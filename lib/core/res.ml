(** The top-level RES pipeline: coredump in, replayable root-caused
    execution suffix out.

    [analyze] runs iterative deepening over the suffix length: synthesize
    suffixes of length 1, 2, ... (paper: "RES continues building up
    suffixes by moving backward through the execution"), replay each
    candidate to verify it deterministically reproduces the coredump, and
    classify the root cause from the replayed trace.  It stops as soon as a
    reproduced suffix exhibits a definite root cause, or when the depth
    budget is exhausted. *)

type report = {
  suffix : Suffix.t;
  verdict : Replay.verdict;
  root_cause : Rootcause.t option;  (** None when replay failed *)
  deterministic : bool;  (** replayed [determinism_runs] times identically *)
}

type analysis = {
  reports : report list;  (** reproduced suffixes, best (deepest-cause) first *)
  depth_reached : int;
  nodes_expanded : int;
  candidates_tried : int;
  nodes_pruned : int;
      (** candidates the static layer refuted without evaluation *)
  nodes_reversed : int;
      (** backward steps decided by concrete reverse execution *)
  slice_skipped : int;
      (** instructions reverse steps skipped as outside the slice *)
  suffixes_synthesized : int;
  cpu_seconds : float;
  checkpoint : string option;
      (** path of the last checkpoint written during this analysis *)
}

type config = {
  search : Search.config;
  determinism_runs : int;
  stop_at_first_cause : bool;
      (** stop deepening once a reproduced suffix has a concurrency or
          memory-safety root cause (not merely the crash site) *)
  max_attempts : int;
      (** retry-with-escalation: when the search exhausts its node budget
          without a definite cause, restart with doubled budgets up to this
          many attempts (wall-clock deadline permitting) *)
}

let default_config =
  {
    search = Search.default_config;
    determinism_runs = 3;
    stop_at_first_cause = true;
    max_attempts = 3;
  }

(** How an analysis ended.  [Complete] ran to a deliberate stop (definite
    cause found, or the full depth explored within budget); [Partial]
    carries the best reports found before a budget tripped; [Failed] could
    not analyze at all. *)
type partial_reason =
  | Deadline_exceeded  (** the wall-clock deadline tripped mid-search *)
  | Fuel_exhausted  (** the cooperative fuel budget tripped *)
  | Search_truncated
      (** the search node budget was exhausted on every attempt *)

type error =
  | Bad_dump of string  (** the coredump does not match the program *)
  | Internal of string  (** an unexpected failure inside the pipeline *)

let pp_partial_reason ppf = function
  | Deadline_exceeded -> Fmt.string ppf "wall-clock deadline exceeded"
  | Fuel_exhausted -> Fmt.string ppf "fuel budget exhausted"
  | Search_truncated -> Fmt.string ppf "search node budget exhausted"

let pp_error ppf = function
  | Bad_dump msg -> Fmt.pf ppf "bad coredump: %s" msg
  | Internal msg -> Fmt.pf ppf "internal error: %s" msg

(** Whether a cause is a definite defect (vs just the crash location). *)
let definite_cause = function
  | Rootcause.Data_race _ | Rootcause.Atomicity_violation _
  | Rootcause.Use_after_free_cause _ | Rootcause.Buffer_overflow_cause _
  | Rootcause.Double_free_cause _ | Rootcause.Deadlock_cause _ ->
      true
  | Rootcause.Division_by_zero_cause _ | Rootcause.Assertion_cause _
  | Rootcause.Abort_cause _ | Rootcause.Unclassified _ ->
      false

let report_of ctx config (dump : Res_vm.Coredump.t) suffix =
  let verdict = Replay.replay ctx suffix dump in
  if not verdict.Replay.reproduced then
    { suffix; verdict; root_cause = None; deterministic = false }
  else
    let root_cause =
      Some
        (Rootcause.classify
           ~threads:(Res_vm.Coredump.threads dump)
           ~crash:dump.Res_vm.Coredump.crash ~heap:dump.Res_vm.Coredump.heap
           ~layout:ctx.Backstep.layout verdict.Replay.trace)
    in
    let deterministic, _ =
      Replay.replay_deterministically ~times:config.determinism_runs ctx suffix
        dump
    in
    { suffix; verdict; root_cause; deterministic }

type outcome =
  | Complete of analysis
  | Partial of partial_reason * analysis
  | Failed of error

(** Point-in-time image of a whole analysis, sufficient to continue it in
    another process after this one dies.  It records where in the
    escalation/deepening schedule the analysis was ([ck_attempt],
    [ck_max_nodes], [ck_depth]), the suffixes behind the reports of every
    {e completed} depth (reports are recomputed on resume — replay is
    deterministic, so recomputation is cheaper than persisting verdicts),
    the pipeline counters over completed depths, the suspended in-flight
    search (whose own counters cover the partial depth, so nothing is
    double-counted), the budget's remaining fuel, and the fresh-symbol
    counter (restored absolutely so a resumed run mints identical symbol
    ids and produces bit-identical reports). *)
type ckpt_state = {
  ck_attempt : int;  (** 0-based escalation attempt in progress *)
  ck_max_nodes : int;  (** the attempt's (possibly doubled) node budget *)
  ck_depth : int;  (** suffix depth in progress (or next, if no frontier) *)
  ck_suffixes : Suffix.t list;  (** reproduced suffixes of completed depths *)
  ck_truncated : bool;  (** a depth of this attempt hit the node budget *)
  ck_nodes : int;
  ck_cands : int;
  ck_pruned : int;
  ck_reversed : int;
  ck_slice_skipped : int;
  ck_synth : int;
  ck_suspended : Search.suspended option;
      (** the in-flight search frontier; [None] between depths *)
  ck_fuel : int option;  (** remaining fuel at checkpoint time *)
  ck_expr_counter : int;  (** {!Expr} fresh-variable counter *)
}

(** How an analysis persists itself.  [ck_write] serializes a state to
    stable storage and returns where it landed; the analysis records the
    path in {!analysis.checkpoint} and ignores write errors (a failed
    checkpoint must never kill the analysis it protects). *)
type checkpointer = {
  ck_every : int;  (** auto-checkpoint every this many expanded nodes *)
  ck_write : ckpt_state -> (string, string) result;
}

let empty_analysis =
  {
    reports = [];
    depth_reached = 0;
    nodes_expanded = 0;
    candidates_tried = 0;
    nodes_pruned = 0;
    nodes_reversed = 0;
    slice_skipped = 0;
    suffixes_synthesized = 0;
    cpu_seconds = 0.;
    checkpoint = None;
  }

(** The analysis carried by an outcome ([Failed] carries an empty one). *)
let analysis = function Complete a | Partial (_, a) -> a | Failed _ -> empty_analysis

let outcome_name = function
  | Complete _ -> "complete"
  | Partial _ -> "partial"
  | Failed _ -> "failed"

(** The analysis ran out of wall clock or fuel (as opposed to finishing,
    truncating on the node budget, or failing outright).  This is what a
    serving layer's circuit breaker counts as a "solver timeout": the
    request burned its whole budget without reaching a deliberate stop. *)
let is_budget_partial = function
  | Partial ((Deadline_exceeded | Fuel_exhausted), _) -> true
  | Complete _ | Partial (Search_truncated, _) | Failed _ -> false

let pp_outcome ppf = function
  | Complete _ -> Fmt.string ppf "complete"
  | Partial (r, a) ->
      Fmt.pf ppf "partial (%a; %d report(s) salvaged)" pp_partial_reason r
        (List.length a.reports)
  | Failed e -> Fmt.pf ppf "failed: %a" pp_error e

(** Cheap structural validation of a dump against the program under
    analysis: every program location the dump mentions must resolve.  A
    truncated or bit-corrupted dump that survived parsing is usually caught
    here, before the search builds on nonsense. *)
let check_dump ctx (dump : Res_vm.Coredump.t) =
  let check_pc what (pc : Res_ir.Pc.t) =
    match Res_ir.Prog.func_opt ctx.Backstep.prog pc.Res_ir.Pc.func with
    | None -> Error (Fmt.str "%s references unknown function %s" what pc.func)
    | Some f -> (
        match Res_ir.Func.block_opt f pc.Res_ir.Pc.block with
        | None ->
            Error (Fmt.str "%s references unknown block %s:%s" what pc.func pc.block)
        | Some b ->
            if pc.Res_ir.Pc.idx < 0 || pc.idx > Res_ir.Block.length b then
              Error
                (Fmt.str "%s index %d out of range for %s:%s" what pc.idx pc.func
                   pc.block)
            else Ok ())
  in
  let ( let* ) = Result.bind in
  let* () = check_pc "crash site" dump.Res_vm.Coredump.crash.Res_vm.Crash.pc in
  let* () =
    List.fold_left
      (fun acc (th : Res_vm.Thread.t) ->
        List.fold_left
          (fun acc (fr : Res_vm.Frame.t) ->
            let* () = acc in
            check_pc
              (Fmt.str "thread %d frame" th.Res_vm.Thread.tid)
              (Res_ir.Pc.v ~func:fr.Res_vm.Frame.func ~block:fr.Res_vm.Frame.block
                 ~idx:fr.Res_vm.Frame.idx))
          acc th.Res_vm.Thread.frames)
      (Ok ())
      (Res_vm.Coredump.threads dump)
  in
  if dump.Res_vm.Coredump.steps < 0 then Error "negative step count" else Ok ()

(** The fresh state an [analyze] starts from: attempt 0, depth 1, nothing
    accumulated. *)
let initial_state config =
  {
    ck_attempt = 0;
    ck_max_nodes = config.search.Search.max_nodes;
    ck_depth = 1;
    ck_suffixes = [];
    ck_truncated = false;
    ck_nodes = 0;
    ck_cands = 0;
    ck_pruned = 0;
    ck_reversed = 0;
    ck_slice_skipped = 0;
    ck_synth = 0;
    ck_suspended = None;
    ck_fuel = None;
    ck_expr_counter = Res_solver.Expr.counter_value ();
  }

let found_definite_in reports =
  List.exists
    (fun r ->
      match r.root_cause with
      | Some c -> definite_cause c && r.deterministic
      | None -> false)
    reports

(** The per-depth search primitive the deepening engine calls.  The
    default is {!Search.search}; {!Res_parallel} substitutes its sharded
    coordinator/worker search here, which is how the whole
    analyze/replay/classify pipeline runs in parallel without the
    deepening logic knowing. *)
type search_fn =
  config:Search.config ->
  budget:Budget.t ->
  resume:Search.suspended option ->
  on_node:(Search.suspended -> unit) option ->
  Backstep.ctx ->
  Res_vm.Coredump.t ->
  Search.result

let default_search_fn : search_fn =
 fun ~config ~budget ~resume ~on_node ctx dump ->
  Search.search ~config ~budget ?resume ?on_node ctx dump

(** The engine shared by {!analyze} and {!resume}: run the
    retry-with-escalation / iterative-deepening schedule starting from
    [st0] (fresh for [analyze], a reloaded checkpoint for [resume]),
    writing checkpoints through [checkpointer] every [ck_every] expanded
    nodes and at the moment a budget trips. *)
let run ?(search_fn = default_search_fn) config budget checkpointer ctx
    (dump : Res_vm.Coredump.t) (st0 : ckpt_state) : outcome =
  let t0 = Sys.time () in
  (* Counters over completed depths; the in-flight depth's share lives in
     the suspended search state, so a resumed run re-reports it. *)
  let nodes = ref st0.ck_nodes
  and cands = ref st0.ck_cands
  and pruned = ref st0.ck_pruned
  and reversed = ref st0.ck_reversed
  and sliced = ref st0.ck_slice_skipped
  and synth = ref st0.ck_synth in
  let truncated = ref st0.ck_truncated in
  let last_ckpt = ref None in
  let ckpt_tick = ref 0 in
  let mk_state ~attempt ~max_nodes ~depth ~acc ~suspended =
    {
      ck_attempt = attempt;
      ck_max_nodes = max_nodes;
      ck_depth = depth;
      ck_suffixes = List.map (fun r -> r.suffix) acc;
      ck_truncated = !truncated;
      ck_nodes = !nodes;
      ck_cands = !cands;
      ck_pruned = !pruned;
      ck_reversed = !reversed;
      ck_slice_skipped = !sliced;
      ck_synth = !synth;
      ck_suspended = suspended;
      ck_fuel = Budget.remaining_fuel budget;
      ck_expr_counter = Res_solver.Expr.counter_value ();
    }
  in
  let write_state st =
    match checkpointer with
    | None -> ()
    | Some c -> (
        (* A failed checkpoint write must never kill the analysis it
           protects: keep the previous good checkpoint and move on. *)
        match c.ck_write st with
        | Ok path -> last_ckpt := Some path
        | Error _ -> ())
  in
  let hook ~attempt ~max_nodes ~depth ~acc =
    match checkpointer with
    | None -> None
    | Some c ->
        Some
          (fun (susp : Search.suspended) ->
            incr ckpt_tick;
            if !ckpt_tick >= c.ck_every then begin
              ckpt_tick := 0;
              write_state
                (mk_state ~attempt ~max_nodes ~depth ~acc
                   ~suspended:(Some susp))
            end)
  in
  (* The state a resume from the exhaustion instant needs — captured as
     close to the trip as possible (in-search, with the live frontier)
     and written out just before returning [Partial]. *)
  let susp_final = ref None in
  let finish_analysis reports depth =
    (* Definite causes first, then longer suffixes first. *)
    let score r =
      match r.root_cause with
      | Some c when definite_cause c -> 2
      | Some _ -> 1
      | None -> 0
    in
    let reports =
      List.stable_sort
        (fun a b ->
          match compare (score b) (score a) with
          | 0 -> compare (Suffix.length b.suffix) (Suffix.length a.suffix)
          | c -> c)
        reports
    in
    {
      reports;
      depth_reached = depth;
      nodes_expanded = !nodes;
      candidates_tried = !cands;
      nodes_pruned = !pruned;
      nodes_reversed = !reversed;
      slice_skipped = !sliced;
      suffixes_synthesized = !synth;
      cpu_seconds = Sys.time () -. t0;
      checkpoint = !last_ckpt;
    }
  in
  let rec attempt i max_nodes ~depth0 ~acc0 ~resume =
    let search_config = { config.search with Search.max_nodes } in
    let rec deepen depth acc ~resume =
      if depth > search_config.Search.max_segments then (acc, depth - 1)
      else if not (Budget.ok budget) then begin
        (* The budget tripped between depths (or before the first): the
           resume point is a fresh search at this depth — unless a more
           precise in-search suspension was already captured. *)
        (match !susp_final with
        | None ->
            susp_final :=
              Some (mk_state ~attempt:i ~max_nodes ~depth ~acc ~suspended:None)
        | Some _ -> ());
        (acc, depth - 1)
      end
      else begin
        let result =
          search_fn
            ~config:{ search_config with Search.max_segments = depth }
            ~budget ~resume
            ~on_node:(hook ~attempt:i ~max_nodes ~depth ~acc)
            ctx dump
        in
        (* Capture the suspension point before folding this depth's stats
           into the totals: a resumed search re-reports them. *)
        (match result.Search.suspended with
        | Some s when Budget.exhausted budget <> None ->
            susp_final :=
              Some
                (mk_state ~attempt:i ~max_nodes ~depth ~acc
                   ~suspended:(Some s))
        | _ -> ());
        nodes := !nodes + result.Search.stats.Search.nodes;
        cands := !cands + result.Search.stats.Search.candidates;
        pruned := !pruned + result.Search.stats.Search.pruned;
        reversed := !reversed + result.Search.stats.Search.reversed;
        sliced := !sliced + result.Search.stats.Search.slice_skipped;
        synth := !synth + List.length result.Search.suffixes;
        if not result.Search.complete then truncated := true;
        let reports =
          List.map (report_of ctx config dump) result.Search.suffixes
          |> List.filter (fun r -> r.verdict.Replay.reproduced)
        in
        let acc = acc @ reports in
        if config.stop_at_first_cause && found_definite_in acc then (acc, depth)
        else deepen (depth + 1) acc ~resume:None
      end
    in
    let reports, depth = deepen depth0 acc0 ~resume in
    let found_definite = found_definite_in reports in
    match Budget.exhausted budget with
    | Some Budget.Deadline ->
        (match !susp_final with Some st -> write_state st | None -> ());
        Partial (Deadline_exceeded, finish_analysis reports depth)
    | Some Budget.Fuel ->
        (match !susp_final with Some st -> write_state st | None -> ());
        Partial (Fuel_exhausted, finish_analysis reports depth)
    | None ->
        if found_definite || not !truncated then
          Complete (finish_analysis reports depth)
        else if i + 1 < config.max_attempts then begin
          (* Escalate: double the search budget and go again, from
             scratch — the escalated attempt re-derives its own reports. *)
          truncated := false;
          attempt (i + 1) (max_nodes * 2) ~depth0:1 ~acc0:[] ~resume:None
        end
        else Partial (Search_truncated, finish_analysis reports depth)
  in
  let acc0 = List.map (report_of ctx config dump) st0.ck_suffixes in
  attempt st0.ck_attempt st0.ck_max_nodes ~depth0:st0.ck_depth ~acc0
    ~resume:st0.ck_suspended

let guarded f =
  try f () with
  | Stack_overflow -> Failed (Internal "stack overflow during analysis")
  | exn -> Failed (Internal (Printexc.to_string exn))

(** Analyze a coredump: synthesize, replay, classify — always returning a
    typed outcome.  [budget] bounds the whole analysis (wall-clock deadline
    and/or cooperative fuel); when it trips, the best reports found so far
    come back as [Partial].  A search that merely exhausts its node budget
    without a definite cause is retried with doubled budgets, up to
    [config.max_attempts] attempts (graceful degradation instead of silent
    truncation).  [checkpointer] persists the analysis periodically and at
    the instant a budget trips, so a later {!resume} can continue it. *)
let analyze ?(config = default_config) ?budget ?checkpointer ctx
    (dump : Res_vm.Coredump.t) : outcome =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  match check_dump ctx dump with
  | Error msg -> Failed (Bad_dump msg)
  | Ok () ->
      guarded (fun () ->
          run config budget checkpointer ctx dump (initial_state config))

(** {!analyze} with a substituted per-depth search primitive — the hook
    {!Res_parallel.Engine} hangs its sharded search on.  No checkpointer:
    a parallel analysis persists per-worker unit checkpoints instead of a
    single whole-analysis image. *)
let analyze_with ~search_fn ?(config = default_config) ?budget ctx
    (dump : Res_vm.Coredump.t) : outcome =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  match check_dump ctx dump with
  | Error msg -> Failed (Bad_dump msg)
  | Ok () ->
      guarded (fun () ->
          run ~search_fn config budget None ctx dump (initial_state config))

(** Continue an analysis from a reloaded checkpoint.  Restores the
    fresh-symbol counter first, recomputes the reports of completed depths
    from the checkpointed suffixes (replay is deterministic), then
    re-enters the schedule exactly where the checkpoint suspended it —
    producing, by construction, the same reports an uninterrupted run
    would.  [budget] defaults to unlimited: the interrupted run's budget
    already tripped, and a resume usually wants to finish the job. *)
let resume ?(config = default_config) ?budget ?checkpointer ctx
    (dump : Res_vm.Coredump.t) (st : ckpt_state) : outcome =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  match check_dump ctx dump with
  | Error msg -> Failed (Bad_dump msg)
  | Ok () ->
      guarded (fun () ->
          Res_solver.Expr.restore_counter st.ck_expr_counter;
          run config budget checkpointer ctx dump st)

(** The best root cause of an analysis, if any. *)
let best_cause analysis =
  List.find_map (fun r -> r.root_cause) analysis.reports

(** Convenience: build a context and analyze in one call. *)
let analyze_program ?config ?sym_config ?solver_config ?budget prog dump =
  let ctx = Backstep.make_ctx ?sym_config ?solver_config prog in
  analyze ?config ?budget ctx dump
