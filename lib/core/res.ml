(** The top-level RES pipeline: coredump in, replayable root-caused
    execution suffix out.

    [analyze] runs iterative deepening over the suffix length: synthesize
    suffixes of length 1, 2, ... (paper: "RES continues building up
    suffixes by moving backward through the execution"), replay each
    candidate to verify it deterministically reproduces the coredump, and
    classify the root cause from the replayed trace.  It stops as soon as a
    reproduced suffix exhibits a definite root cause, or when the depth
    budget is exhausted. *)

type report = {
  suffix : Suffix.t;
  verdict : Replay.verdict;
  root_cause : Rootcause.t option;  (** None when replay failed *)
  deterministic : bool;  (** replayed [determinism_runs] times identically *)
}

type analysis = {
  reports : report list;  (** reproduced suffixes, best (deepest-cause) first *)
  depth_reached : int;
  nodes_expanded : int;
  candidates_tried : int;
  suffixes_synthesized : int;
  cpu_seconds : float;
}

type config = {
  search : Search.config;
  determinism_runs : int;
  stop_at_first_cause : bool;
      (** stop deepening once a reproduced suffix has a concurrency or
          memory-safety root cause (not merely the crash site) *)
  max_attempts : int;
      (** retry-with-escalation: when the search exhausts its node budget
          without a definite cause, restart with doubled budgets up to this
          many attempts (wall-clock deadline permitting) *)
}

let default_config =
  {
    search = Search.default_config;
    determinism_runs = 3;
    stop_at_first_cause = true;
    max_attempts = 3;
  }

(** How an analysis ended.  [Complete] ran to a deliberate stop (definite
    cause found, or the full depth explored within budget); [Partial]
    carries the best reports found before a budget tripped; [Failed] could
    not analyze at all. *)
type partial_reason =
  | Deadline_exceeded  (** the wall-clock deadline tripped mid-search *)
  | Fuel_exhausted  (** the cooperative fuel budget tripped *)
  | Search_truncated
      (** the search node budget was exhausted on every attempt *)

type error =
  | Bad_dump of string  (** the coredump does not match the program *)
  | Internal of string  (** an unexpected failure inside the pipeline *)

let pp_partial_reason ppf = function
  | Deadline_exceeded -> Fmt.string ppf "wall-clock deadline exceeded"
  | Fuel_exhausted -> Fmt.string ppf "fuel budget exhausted"
  | Search_truncated -> Fmt.string ppf "search node budget exhausted"

let pp_error ppf = function
  | Bad_dump msg -> Fmt.pf ppf "bad coredump: %s" msg
  | Internal msg -> Fmt.pf ppf "internal error: %s" msg

(** Whether a cause is a definite defect (vs just the crash location). *)
let definite_cause = function
  | Rootcause.Data_race _ | Rootcause.Atomicity_violation _
  | Rootcause.Use_after_free_cause _ | Rootcause.Buffer_overflow_cause _
  | Rootcause.Double_free_cause _ | Rootcause.Deadlock_cause _ ->
      true
  | Rootcause.Division_by_zero_cause _ | Rootcause.Assertion_cause _
  | Rootcause.Abort_cause _ | Rootcause.Unclassified _ ->
      false

let report_of ctx config (dump : Res_vm.Coredump.t) suffix =
  let verdict = Replay.replay ctx suffix dump in
  if not verdict.Replay.reproduced then
    { suffix; verdict; root_cause = None; deterministic = false }
  else
    let root_cause =
      Some
        (Rootcause.classify
           ~threads:(Res_vm.Coredump.threads dump)
           ~crash:dump.Res_vm.Coredump.crash ~heap:dump.Res_vm.Coredump.heap
           ~layout:ctx.Backstep.layout verdict.Replay.trace)
    in
    let deterministic, _ =
      Replay.replay_deterministically ~times:config.determinism_runs ctx suffix
        dump
    in
    { suffix; verdict; root_cause; deterministic }

type outcome =
  | Complete of analysis
  | Partial of partial_reason * analysis
  | Failed of error

let empty_analysis =
  {
    reports = [];
    depth_reached = 0;
    nodes_expanded = 0;
    candidates_tried = 0;
    suffixes_synthesized = 0;
    cpu_seconds = 0.;
  }

(** The analysis carried by an outcome ([Failed] carries an empty one). *)
let analysis = function Complete a | Partial (_, a) -> a | Failed _ -> empty_analysis

let outcome_name = function
  | Complete _ -> "complete"
  | Partial _ -> "partial"
  | Failed _ -> "failed"

let pp_outcome ppf = function
  | Complete _ -> Fmt.string ppf "complete"
  | Partial (r, a) ->
      Fmt.pf ppf "partial (%a; %d report(s) salvaged)" pp_partial_reason r
        (List.length a.reports)
  | Failed e -> Fmt.pf ppf "failed: %a" pp_error e

(** Cheap structural validation of a dump against the program under
    analysis: every program location the dump mentions must resolve.  A
    truncated or bit-corrupted dump that survived parsing is usually caught
    here, before the search builds on nonsense. *)
let check_dump ctx (dump : Res_vm.Coredump.t) =
  let check_pc what (pc : Res_ir.Pc.t) =
    match Res_ir.Prog.func_opt ctx.Backstep.prog pc.Res_ir.Pc.func with
    | None -> Error (Fmt.str "%s references unknown function %s" what pc.func)
    | Some f -> (
        match Res_ir.Func.block_opt f pc.Res_ir.Pc.block with
        | None ->
            Error (Fmt.str "%s references unknown block %s:%s" what pc.func pc.block)
        | Some b ->
            if pc.Res_ir.Pc.idx < 0 || pc.idx > Res_ir.Block.length b then
              Error
                (Fmt.str "%s index %d out of range for %s:%s" what pc.idx pc.func
                   pc.block)
            else Ok ())
  in
  let ( let* ) = Result.bind in
  let* () = check_pc "crash site" dump.Res_vm.Coredump.crash.Res_vm.Crash.pc in
  let* () =
    List.fold_left
      (fun acc (th : Res_vm.Thread.t) ->
        List.fold_left
          (fun acc (fr : Res_vm.Frame.t) ->
            let* () = acc in
            check_pc
              (Fmt.str "thread %d frame" th.Res_vm.Thread.tid)
              (Res_ir.Pc.v ~func:fr.Res_vm.Frame.func ~block:fr.Res_vm.Frame.block
                 ~idx:fr.Res_vm.Frame.idx))
          acc th.Res_vm.Thread.frames)
      (Ok ())
      (Res_vm.Coredump.threads dump)
  in
  if dump.Res_vm.Coredump.steps < 0 then Error "negative step count" else Ok ()

(** One full iterative-deepening pass under [search_config].  Returns the
    sorted reports, the depth reached, whether a definite deterministic
    cause was found, and whether any per-depth search was truncated. *)
let deepen_pass ctx config search_config budget dump ~nodes ~cands ~synth =
  let truncated = ref false in
  let rec deepen depth acc =
    if depth > search_config.Search.max_segments then (acc, depth - 1)
    else if not (Budget.ok budget) then (acc, depth - 1)
    else
      let result =
        Search.search
          ~config:{ search_config with Search.max_segments = depth }
          ~budget ctx dump
      in
      nodes := !nodes + result.Search.stats.Search.nodes;
      cands := !cands + result.Search.stats.Search.candidates;
      synth := !synth + List.length result.Search.suffixes;
      if not result.Search.complete then truncated := true;
      let reports =
        List.map (report_of ctx config dump) result.Search.suffixes
        |> List.filter (fun r -> r.verdict.Replay.reproduced)
      in
      let acc = acc @ reports in
      let found_definite =
        List.exists
          (fun r ->
            match r.root_cause with
            | Some c -> definite_cause c && r.deterministic
            | None -> false)
          acc
      in
      if config.stop_at_first_cause && found_definite then (acc, depth)
      else deepen (depth + 1) acc
  in
  let reports, depth = deepen 1 [] in
  let found_definite =
    List.exists
      (fun r ->
        match r.root_cause with
        | Some c -> definite_cause c && r.deterministic
        | None -> false)
      reports
  in
  (reports, depth, found_definite, !truncated)

(** Analyze a coredump: synthesize, replay, classify — always returning a
    typed outcome.  [budget] bounds the whole analysis (wall-clock deadline
    and/or cooperative fuel); when it trips, the best reports found so far
    come back as [Partial].  A search that merely exhausts its node budget
    without a definite cause is retried with doubled budgets, up to
    [config.max_attempts] attempts (graceful degradation instead of silent
    truncation). *)
let analyze ?(config = default_config) ?budget ctx (dump : Res_vm.Coredump.t) :
    outcome =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let t0 = Sys.time () in
  let nodes = ref 0 and cands = ref 0 and synth = ref 0 in
  let finish_analysis reports depth =
    (* Definite causes first, then longer suffixes first. *)
    let score r =
      match r.root_cause with
      | Some c when definite_cause c -> 2
      | Some _ -> 1
      | None -> 0
    in
    let reports =
      List.stable_sort
        (fun a b ->
          match compare (score b) (score a) with
          | 0 -> compare (Suffix.length b.suffix) (Suffix.length a.suffix)
          | c -> c)
        reports
    in
    {
      reports;
      depth_reached = depth;
      nodes_expanded = !nodes;
      candidates_tried = !cands;
      suffixes_synthesized = !synth;
      cpu_seconds = Sys.time () -. t0;
    }
  in
  match check_dump ctx dump with
  | Error msg -> Failed (Bad_dump msg)
  | Ok () -> (
      try
        let rec attempt i search_config =
          let reports, depth, found_definite, truncated =
            deepen_pass ctx config search_config budget dump ~nodes ~cands ~synth
          in
          match Budget.exhausted budget with
          | Some Budget.Deadline ->
              Partial (Deadline_exceeded, finish_analysis reports depth)
          | Some Budget.Fuel ->
              Partial (Fuel_exhausted, finish_analysis reports depth)
          | None ->
              if found_definite || not truncated then
                Complete (finish_analysis reports depth)
              else if i + 1 < config.max_attempts then
                (* Escalate: double the search budget and go again. *)
                attempt (i + 1)
                  {
                    search_config with
                    Search.max_nodes = search_config.Search.max_nodes * 2;
                  }
              else Partial (Search_truncated, finish_analysis reports depth)
        in
        attempt 0 config.search
      with
      | Stack_overflow -> Failed (Internal "stack overflow during analysis")
      | exn -> Failed (Internal (Printexc.to_string exn)))

(** The best root cause of an analysis, if any. *)
let best_cause analysis =
  List.find_map (fun r -> r.root_cause) analysis.reports

(** Convenience: build a context and analyze in one call. *)
let analyze_program ?config ?sym_config ?solver_config ?budget prog dump =
  let ctx = Backstep.make_ctx ?sym_config ?solver_config prog in
  analyze ?config ?budget ctx dump
