(** Backward search for execution suffixes.

    Starting from the coredump, the search repeatedly chooses a thread and
    applies one backward step ({!Backstep}), building the suffix one
    segment at a time.  Snapshot compatibility (the solver) prunes
    infeasible candidates; optional LBR breadcrumbs prune harder (paper
    §2.4); the static chain refuter ({!Res_static.Chain}) skips candidate
    steps whose symbolic execution is statically guaranteed to be rejected
    by the solver.  The search yields every feasible suffix of the
    requested length, crashing thread prioritized. *)

module IMap = Map.Make (Int)
module ISet = Set.Make (Int)
open Res_solver

type config = {
  max_segments : int;  (** how far back to synthesize *)
  max_suffixes : int;  (** stop after this many feasible suffixes *)
  max_nodes : int;  (** search budget *)
  use_breadcrumbs : bool;  (** prune candidate predecessors with the LBR *)
  static_prune : bool;
      (** skip candidate steps the static chain refuter proves the solver
          would reject — admissible: emitted suffixes are identical either
          way, only the work differs *)
  reverse_exec : bool;
      (** decide proven-invertible full-block segments by concrete reverse
          execution, skipping symbolic execution and the solver —
          admissible: emitted suffixes are identical either way *)
}

let default_config =
  {
    max_segments = 6;
    max_suffixes = 4;
    max_nodes = 4000;
    use_breadcrumbs = false;
    static_prune = true;
    reverse_exec = true;
  }

type stats = {
  mutable nodes : int;  (** backward-step evaluations performed *)
  mutable candidates : int;  (** backward-step candidates generated *)
  mutable feasible : int;  (** candidates that survived the solver *)
  mutable emitted : int;  (** suffixes produced *)
  mutable pruned : int;  (** candidates refuted statically, never evaluated *)
  mutable reversed : int;
      (** backward steps decided by concrete reverse execution *)
  mutable slice_skipped : int;
      (** instructions the reverse steps skipped as outside the slice *)
}

let new_stats () =
  {
    nodes = 0;
    candidates = 0;
    feasible = 0;
    emitted = 0;
    pruned = 0;
    reversed = 0;
    slice_skipped = 0;
  }

(** Per-thread LBR breadcrumbs: branches of the thread's root function,
    most recent first — exactly the segment-end branches, in reverse
    chronological order. *)
type crumbs = Res_vm.Tracer.branch list IMap.t

let crumbs_of_dump ctx (dump : Res_vm.Coredump.t) : crumbs =
  let root_func_of tid =
    match IMap.find_opt tid dump.Res_vm.Coredump.threads with
    | Some (th : Res_vm.Thread.t) -> (
        match List.rev th.frames with
        | (root : Res_vm.Frame.t) :: _ -> Some root.func
        | [] -> None)
    | None -> None
  in
  ignore ctx;
  List.fold_left
    (fun m (b : Res_vm.Tracer.branch) ->
      match root_func_of b.br_tid with
      | Some root when String.equal root b.br_func ->
          IMap.update b.br_tid
            (function Some l -> Some (l @ [ b ]) | None -> Some [ b ])
            m
      | _ -> m)
    IMap.empty
    (Res_vm.Tracer.branches dump.Res_vm.Coredump.tracer)

type node = {
  n_snapshot : Snapshot.t;
  n_segments : Suffix.segment list;  (** oldest first *)
  n_crumbs : crumbs;
  n_logs : Res_vm.Tracer.log_entry list;
      (** dump error-log entries not yet attributed to a segment, most
          recent first — the paper's second breadcrumb source *)
  n_last_tid : int;  (** thread of the most recently prepended segment *)
  n_touched : int list;  (** addresses the suffix reads/writes, for pointer hints *)
}

(** Match a segment's [log] emissions against the unconsumed tail of the
    coredump's error log.  The segment's emissions, newest first, must be
    the next unconsumed entries (the error log records everything, so a
    mismatch is a contradiction).  Returns the value-equality constraints
    and the remaining log, or [None] to prune. *)
let consume_logs ~tid ap_logs remaining =
  let rec go acc remaining = function
    | [] -> Some (acc, remaining)
    | (tag, e) :: rest -> (
        match remaining with
        | (entry : Res_vm.Tracer.log_entry) :: remaining'
          when entry.log_tid = tid && String.equal entry.log_tag tag ->
            go
              (Expr.eq e (Expr.const entry.log_value) :: acc)
              remaining' rest
        | _ -> None)
  in
  go [] remaining (List.rev ap_logs)

(** Candidate moves from a node: [(tid, kind, crumbs-after)] in priority
    order. *)
let candidate_moves ctx config (node : node) =
  let snapshot = node.n_snapshot in
  let moves_for (ts : Snapshot.thread_state) =
    let tid = ts.Snapshot.ts_tid in
    match ts.Snapshot.ts_status with
    | Res_vm.Thread.Halted ->
        (* Terminal segment: any ret/halt block of the thread's possible
           root functions.  The coredump records no frames for halted
           threads, but tid 0 always runs [main] and spawned threads run a
           function some spawn site names. *)
        let funcs =
          if tid = 0 then [ Res_ir.Prog.main_name ]
          else
            List.filter_map
              (fun (f : Res_ir.Func.t) ->
                if Res_ir.Cfg.spawn_sites_of ctx.Backstep.cfg f.name <> [] then
                  Some f.name
                else None)
              ctx.Backstep.prog.Res_ir.Prog.funcs
            |> List.sort_uniq compare
        in
        List.concat_map
          (fun fname ->
            let f = Res_ir.Prog.func ctx.Backstep.prog fname in
            List.filter_map
              (fun (b : Res_ir.Block.t) ->
                match b.term with
                | Res_ir.Instr.Ret _ | Res_ir.Instr.Halt ->
                    Some
                      ( tid,
                        Backstep.K_final { func = fname; block = b.label },
                        node.n_crumbs )
                | _ -> None)
              f.blocks)
          funcs
    | Res_vm.Thread.Blocked_on_lock _ | Res_vm.Thread.Blocked_on_join _
      when not ts.Snapshot.ts_stepped ->
        let crash =
          match ts.Snapshot.ts_status with
          | Res_vm.Thread.Blocked_on_lock _ ->
              Some (Res_vm.Crash.Deadlock [])
          | _ -> None
        in
        [ (tid, Backstep.K_partial crash, node.n_crumbs) ]
    | _ -> (
        (* Runnable (or blocked-but-stepped, which cannot happen): the
           thread sits at a segment boundary. *)
        match ts.Snapshot.ts_frames with
        | [ fr ] when fr.Res_symex.Symframe.idx = 0 ->
            let func = fr.Res_symex.Symframe.func in
            let label = fr.Res_symex.Symframe.block in
            let preds = Res_ir.Cfg.predecessors ctx.Backstep.cfg ~func ~label in
            let preds, crumbs' =
              if not config.use_breadcrumbs then (preds, node.n_crumbs)
              else
                match IMap.find_opt tid node.n_crumbs with
                | Some (b :: rest) ->
                    if String.equal b.Res_vm.Tracer.br_to label then
                      ( List.filter
                          (String.equal b.Res_vm.Tracer.br_from)
                          preds,
                        IMap.add tid rest node.n_crumbs )
                    else ([], node.n_crumbs) (* contradicts the LBR *)
                | Some [] | None -> (preds, node.n_crumbs)
            in
            List.map
              (fun p -> (tid, Backstep.K_full { block = p }, crumbs'))
              preds
        | _ ->
            (* mid-segment with frames but not stepped: in-progress *)
            if ts.Snapshot.ts_stepped then []
            else [ (tid, Backstep.K_partial None, node.n_crumbs) ])
  in
  (* Prioritize: the thread that ran the following segment first (temporal
     locality), then ascending tid. *)
  let threads =
    Snapshot.threads snapshot
    |> List.sort (fun a b ->
           let w (ts : Snapshot.thread_state) =
             if ts.Snapshot.ts_tid = node.n_last_tid then 0 else 1
           in
           match compare (w a) (w b) with
           | 0 -> compare a.Snapshot.ts_tid b.Snapshot.ts_tid
           | c -> c)
  in
  List.concat_map moves_for threads

(** Whether the node has reconstructed the whole execution: only the main
    thread remains, sitting at the program entry. *)
let at_program_start ctx (node : node) =
  let threads = Snapshot.threads node.n_snapshot in
  match threads with
  | [ ts ] when ts.Snapshot.ts_tid = 0 -> (
      match ts.Snapshot.ts_frames with
      | [ fr ] ->
          let m = Res_ir.Prog.main ctx.Backstep.prog in
          String.equal fr.Res_symex.Symframe.func Res_ir.Prog.main_name
          && String.equal fr.Res_symex.Symframe.block m.Res_ir.Func.entry
          && fr.Res_symex.Symframe.idx = 0
      | _ -> false)
  | _ -> false

(** One candidate backward step, not yet evaluated. *)
type move = {
  mv_tid : int;
  mv_kind : Backstep.kind;
  mv_crumbs : crumbs;  (** the node's crumbs after this move consumes its *)
}

(** One pending unit of search work.  The frontier is lazy at the
    granularity of a single backward step: visiting a node generates its
    candidate moves (cheap, prunable) without evaluating any of them, each
    [F_eval] runs exactly one symbolic backward step when popped, and the
    [F_seal] below a node's evals detects — after all of them have run —
    that none produced a child, which is the dead-end emission point.  The
    first eval that does produce a child deletes its node's seal.

    Laziness is what makes static pruning pay: a refuted candidate is
    dropped at generation time and its symbolic execution and solver calls
    never happen.  The depth-first visit order (and therefore fresh-symbol
    allocation, solver queries, and suffix emission) is identical with and
    without pruning, because a refuted eval is exactly one that would have
    produced no children.

    The frontier (work stack, next-to-visit first) remains the {e entire}
    mutable state of the search besides its counters and its emitted
    suffixes — which is what makes the search suspendable: persist the
    frontier and the search can continue in another process. *)
type frontier_item =
  | F_visit of { f_depth : int; f_node : node }
  | F_eval of {
      e_depth : int;  (** depth of the node being expanded *)
      e_parent : int;  (** visit id of the node, pairs evals with the seal *)
      e_node : node;
      e_move : move;
    }
  | F_seal of { s_parent : int; s_node : node }

(** A suspended search: everything needed to continue it exactly where it
    stopped (and nothing else).  [s_frontier] is the work stack,
    next-to-visit first; [s_out] the suffixes emitted so far, newest first;
    [s_next_id] the visit-id counter; the counters are a copy of {!stats}
    at suspension time.  Resuming with this value yields the same remaining
    visits, in the same order, as the uninterrupted search. *)
type suspended = {
  s_frontier : frontier_item list;
  s_nodes : int;
  s_candidates : int;
  s_feasible : int;
  s_emitted : int;
  s_pruned : int;
  s_reversed : int;
  s_slice_skipped : int;
  s_next_id : int;
  s_out : Suffix.t list;
}

(** One slot of the emission plan a sharded (coordinator) search records:
    the DFS order in which its own shallow emissions interleave with the
    collected subtree shards.  Replaying the plan — substituting each
    shard's suffixes for its [P_shard] slot — reconstructs the exact
    serial emission order. *)
type plan_entry =
  | P_emit  (** the next of the coordinator's own [suffixes], in order *)
  | P_shard of int  (** all suffixes of the [i]th entry of [shards] *)

type result = {
  suffixes : Suffix.t list;
  stats : stats;
  complete : bool;  (** false when a node budget or deadline was exhausted *)
  exhausted : Budget.exhaustion option;
      (** why the shared {!Budget} stopped the search, when it did *)
  suspended : suspended option;
      (** the remaining frontier, when a budget stopped the search before
          it drained — the seed for a later resumed run *)
  plan : plan_entry list;
      (** emission plan, oldest first — empty unless [shard_at] was given *)
  shards : frontier_item list;
      (** the [F_visit] items collected at the shard depth instead of being
          visited, in DFS pop order — the independent subtree work units *)
}

(* --- static pruning glue ------------------------------------------- *)

let chain_value_of_expr : Expr.t -> Res_static.Chain.value = function
  | Expr.Const n -> Res_static.Chain.Known n
  | _ -> Res_static.Chain.Top

(** Register closure over a symbolic frame, with {!Backstep.seed_frame}'s
    convention: a register absent from the frame reads as zero. *)
let frame_values (fr : Res_symex.Symframe.t) r =
  match Res_symex.Symframe.read_opt fr r with
  | Some e -> chain_value_of_expr e
  | None -> Res_static.Chain.Known 0

(** Build the candidate chain and query for {!Res_static.Chain.refute}, or
    raise [Exit] when the move's shape doesn't fit the refuter (partial
    moves, threads without the expected frames) — meaning: don't prune. *)
let prune_query ctx ~stop_snapshot (node : node) tid kind =
  let open Res_static.Chain in
  let candidate =
    match kind with
    | Backstep.K_partial _ -> raise Exit (* never prune partial segments *)
    | Backstep.K_full { block } -> (
        let ts = Snapshot.thread node.n_snapshot tid in
        match Backstep.root_frame ts with
        | None -> raise Exit
        | Some fr ->
            {
              sg_func = fr.Res_symex.Symframe.func;
              sg_block = block;
              sg_end = End_branch fr.Res_symex.Symframe.block;
            })
    | Backstep.K_final { func; block } -> (
        let f = Res_ir.Prog.func ctx.Backstep.prog func in
        let b = Res_ir.Func.block f block in
        match b.Res_ir.Block.term with
        | Res_ir.Instr.Ret _ -> { sg_func = func; sg_block = block; sg_end = End_ret }
        | Res_ir.Instr.Halt ->
            { sg_func = func; sg_block = block; sg_end = End_halt }
        | _ -> raise Exit)
  in
  (* The thread's already-synthesized segments run after the candidate,
     oldest first.  The last one, if partial, stops at the coredump frame
     position of this thread. *)
  let stop_frame =
    lazy
      (match Backstep.root_frame (Snapshot.thread stop_snapshot tid) with
      | Some fr -> fr
      | None -> raise Exit)
  in
  let rest =
    List.filter_map
      (fun (seg : Suffix.segment) ->
        if seg.Suffix.seg_tid <> tid then None
        else
          let sg_end =
            match seg.Suffix.seg_end with
            | Suffix.Seg_branch l -> End_branch l
            | Suffix.Seg_ret -> End_ret
            | Suffix.Seg_halt -> End_halt
            | Suffix.Seg_crash _ | Suffix.Seg_blocked ->
                let fr = Lazy.force stop_frame in
                if
                  String.equal seg.Suffix.seg_func fr.Res_symex.Symframe.func
                  && String.equal seg.Suffix.seg_block
                       fr.Res_symex.Symframe.block
                then End_stop fr.Res_symex.Symframe.idx
                else raise Exit
          in
          Some
            { sg_func = seg.Suffix.seg_func; sg_block = seg.Suffix.seg_block; sg_end })
      node.n_segments
  in
  let seed =
    match kind with
    | Backstep.K_final _ ->
        (* halted thread: no post frame, nothing known *)
        fun _ -> Top
    | _ -> (
        match Backstep.root_frame (Snapshot.thread node.n_snapshot tid) with
        | None -> fun _ -> Top
        | Some fr -> frame_values fr)
  in
  let post_mem addr =
    if ISet.mem addr ctx.Backstep.relaxed_mem then None
    else
      match Snapshot.read_mem node.n_snapshot addr with
      | Expr.Const n -> Some n
      | _ -> None
  in
  let goal =
    match Backstep.root_frame (Snapshot.thread stop_snapshot tid) with
    | Some fr -> Some (frame_values fr)
    | None -> None
  in
  let relaxed =
    List.filter_map
      (fun (t, r) -> if t = tid then Some r else None)
      ctx.Backstep.relaxed_regs
    |> Res_static.Chain.ISet.of_list
  in
  let query =
    {
      q_prog = ctx.Backstep.prog;
      q_summary = Lazy.force ctx.Backstep.statics;
      q_tid = tid;
      q_seed = seed;
      q_post_mem = post_mem;
      q_goal = goal;
      q_relaxed_regs = relaxed;
      q_resolve_global =
        (fun g ->
          match Res_mem.Layout.global_base ctx.Backstep.layout g with
          | base -> Some base
          | exception Not_found -> None);
      q_is_heap_addr = Res_mem.Layout.in_heap_region;
    }
  in
  (query, candidate :: rest)

(** Whether the static chain refuter proves the solver would reject every
    outcome of this move.  [false] on any shape mismatch: pruning is
    best-effort, feasibility is the solver's call. *)
let statically_refuted ctx ~stop_snapshot node tid kind =
  match prune_query ctx ~stop_snapshot node tid kind with
  | query, chain -> Res_static.Chain.refute query chain <> None
  | exception Exit -> false

(** Synthesize suffixes of up to [max_segments] segments for [dump].
    [snapshot0] overrides the base snapshot — e.g.
    {!Snapshot.of_minidump} for the minidump ablation; the default is the
    full coredump.  [budget] bounds the whole search cooperatively
    (wall-clock deadline and node fuel); when it trips, the suffixes found
    so far are returned with [complete = false] and the remaining frontier
    in [suspended].  [resume] continues a previously suspended search
    instead of starting from the coredump.  [on_node] is called at every
    frontier-pop boundary with the state a resume from that instant would
    need — the checkpoint hook.

    [shard_at] turns the call into the {e coordinator} phase of a sharded
    search: every [F_visit] popped at depth >= [shard_at] is {e collected}
    into [result.shards] (in DFS pop order) instead of being visited, and
    an interleaved emission [plan] records where each shard's subtree
    emissions belong among the coordinator's own.  Shallower work (and its
    emissions — early dead ends, program-start hits) proceeds exactly as
    in the serial search, so replaying the plan with each shard's suffixes
    substituted in reproduces the serial emission order byte for byte.
    The [max_suffixes] early-stop stays active: the coordinator's own
    emission count is a lower bound on the serial count at the same pop,
    so stopping here never drops work the serial search would have kept —
    the merge truncates the rest. *)
let search ?(config = default_config) ?snapshot0 ?budget ?resume ?on_node
    ?shard_at ctx (dump : Res_vm.Coredump.t) : result =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let ctx = Backstep.with_interrupt ctx (Budget.interrupt budget) in
  let stats =
    match resume with
    | Some s ->
        {
          nodes = s.s_nodes;
          candidates = s.s_candidates;
          feasible = s.s_feasible;
          emitted = s.s_emitted;
          pruned = s.s_pruned;
          reversed = s.s_reversed;
          slice_skipped = s.s_slice_skipped;
        }
    | None -> new_stats ()
  in
  let next_id = ref (match resume with Some s -> s.s_next_id | None -> 0) in
  let out = ref (match resume with Some s -> s.s_out | None -> []) in
  (* Sharding state: collected subtree units and the interleaved emission
     plan, both newest-first while building. *)
  let plan = ref [] in
  let shards = ref [] in
  let n_shards = ref 0 in
  let budget_hit = ref false in
  let budget_ok () =
    if Budget.tick budget then true
    else begin
      budget_hit := true;
      false
    end
  in
  (* The coredump-time stop state, for the static refuter's goal values.
     [Snapshot.of_coredump] mints no fresh symbols, so recomputing it on a
     resumed run preserves bit-identical symbol allocation. *)
  let snapshot0 =
    match snapshot0 with Some s -> s | None -> Snapshot.of_coredump dump
  in
  let crash = dump.Res_vm.Coredump.crash in
  let emit ?(at_start = false) node =
    if stats.emitted < config.max_suffixes then
      (* A suffix that reaches the program start must satisfy the initial
         conditions: zero-initialized globals, empty heap. *)
      let start_constraints =
        if not at_start then Some []
        else if Res_mem.Heap.blocks node.n_snapshot.Snapshot.heap <> [] then None
        else
          Some
            (List.map
               (fun a -> Expr.eq (Snapshot.read_mem node.n_snapshot a) Expr.zero)
               (Snapshot.symbolic_addrs node.n_snapshot))
      in
      match start_constraints with
      | None -> ()
      | Some start_cs -> (
          match
            Solver.solve ~config:ctx.Backstep.solver_config
              (start_cs @ node.n_snapshot.Snapshot.constraints)
          with
          | Solver.Sat model ->
              stats.emitted <- stats.emitted + 1;
              if shard_at <> None then plan := P_emit :: !plan;
              out :=
                {
                  Suffix.segments = node.n_segments;
                  snapshot = Snapshot.add_constraints node.n_snapshot start_cs;
                  model;
                  crash;
                  complete = at_start;
                }
                :: !out
          | Solver.Unsat | Solver.Unknown -> ())
  in
  (* The frontier: an explicit work stack (next-to-visit first), visited
     depth-first so expansion order — and therefore fresh-symbol
     allocation, solver queries, and suffix emission — is exactly the
     in-order traversal a recursive DFS would make.  A node's evals are
     pushed in candidate order, so the first candidate is evaluated (and
     its whole subtree drained) before the second. *)
  let stack = ref [] in
  let stopped = ref None in
  let snap_state frontier =
    {
      s_frontier = frontier;
      s_nodes = stats.nodes;
      s_candidates = stats.candidates;
      s_feasible = stats.feasible;
      s_emitted = stats.emitted;
      s_pruned = stats.pruned;
      s_reversed = stats.reversed;
      s_slice_skipped = stats.slice_skipped;
      s_next_id = !next_id;
      s_out = !out;
    }
  in
  (* Visit a node: emit if terminal, otherwise generate (and statically
     prune) its candidate moves and schedule one eval per survivor, sealed
     below by the dead-end detector. *)
  let visit ~depth (node : node) =
    if at_program_start ctx node then emit ~at_start:true node
    else if depth >= config.max_segments then emit node
    else begin
      let moves = candidate_moves ctx config node in
      let kept =
        List.filter
          (fun (tid, kind, _) ->
            stats.candidates <- stats.candidates + 1;
            if
              config.static_prune
              && statically_refuted ctx ~stop_snapshot:snapshot0 node tid kind
            then begin
              stats.pruned <- stats.pruned + 1;
              false
            end
            else true)
          moves
      in
      if kept = [] then begin
        (* Dead end earlier than the target depth: emit what we have, as
           long as the suffix is non-empty. *)
        if node.n_segments <> [] then emit node
      end
      else begin
        let id = !next_id in
        incr next_id;
        stack :=
          List.map
            (fun (tid, kind, crumbs') ->
              F_eval
                {
                  e_depth = depth;
                  e_parent = id;
                  e_node = node;
                  e_move = { mv_tid = tid; mv_kind = kind; mv_crumbs = crumbs' };
                })
            kept
          @ (F_seal { s_parent = id; s_node = node } :: !stack)
      end
    end
  in
  (* Evaluate one backward step: symbolic execution plus the feasibility
     solve.  Children are pushed above the node's remaining evals, so the
     first surviving candidate's subtree drains before the second candidate
     is even evaluated. *)
  let eval ~depth ~parent (node : node) mv =
    stats.nodes <- stats.nodes + 1;
    let { Backstep.applied; rejects = _; reversed; slice_skipped } =
      Backstep.step_back ~addr_hint:node.n_touched
        ~reverse_exec:config.reverse_exec ctx node.n_snapshot ~tid:mv.mv_tid
        ~kind:mv.mv_kind
    in
    stats.reversed <- stats.reversed + reversed;
    stats.slice_skipped <- stats.slice_skipped + slice_skipped;
    let children =
      List.filter_map
        (fun (ap : Backstep.applied) ->
          let log_match =
            if not config.use_breadcrumbs then Some ([], node.n_logs)
            else consume_logs ~tid:mv.mv_tid ap.Backstep.ap_logs node.n_logs
          in
          match log_match with
          | None -> None (* contradicts the error log: prune *)
          | Some (log_cs, n_logs) ->
              let snapshot' =
                Snapshot.add_constraints ap.Backstep.ap_snapshot log_cs
              in
              let feasible =
                log_cs = []
                || Solver.solve ~config:ctx.Backstep.solver_config
                     snapshot'.Snapshot.constraints
                   <> Solver.Unsat
              in
              if feasible then begin
                stats.feasible <- stats.feasible + 1;
                let seg = ap.Backstep.ap_segment in
                Some
                  {
                    n_snapshot = snapshot';
                    n_segments = seg :: node.n_segments;
                    n_crumbs = mv.mv_crumbs;
                    n_logs;
                    n_last_tid = mv.mv_tid;
                    n_touched =
                      seg.Suffix.seg_writes @ seg.Suffix.seg_reads
                      @ node.n_touched;
                  }
              end
              else None)
        applied
    in
    if children <> [] then begin
      (* The node is not a dead end: retire its seal. *)
      stack :=
        List.filter
          (function F_seal s -> s.s_parent <> parent | _ -> true)
          !stack;
      stack :=
        List.map (fun n -> F_visit { f_depth = depth + 1; f_node = n }) children
        @ !stack
    end
  in
  let rec drain () =
    match !stack with
    | [] -> ()
    | item :: rest ->
        stack := rest;
        if stats.emitted >= config.max_suffixes then
          (* Enough suffixes: the remaining frontier would not be expanded
             by the recursive search either — drop it wholesale. *)
          stack := []
        else begin
          (* A resume from this instant must re-process [item]: report the
             pre-pop state (frontier including it, counters unbumped). *)
          (match on_node with
          | Some hook -> hook (snap_state (item :: rest))
          | None -> ());
          if stats.nodes >= config.max_nodes then begin
            budget_hit := true;
            stopped := Some (snap_state (item :: rest))
          end
          else if not (budget_ok ()) then
            stopped := Some (snap_state (item :: rest))
          else begin
            (match item with
            | F_visit { f_depth; _ }
              when (match shard_at with
                   | Some d -> f_depth >= d
                   | None -> false) ->
                (* Coordinator phase: this visit roots an independent
                   subtree — collect it as a work unit instead of
                   exploring it, and reserve its slot in the emission
                   plan. *)
                plan := P_shard !n_shards :: !plan;
                incr n_shards;
                shards := item :: !shards
            | F_visit { f_depth; f_node } -> visit ~depth:f_depth f_node
            | F_eval { e_depth; e_parent; e_node; e_move } ->
                eval ~depth:e_depth ~parent:e_parent e_node e_move
            | F_seal { s_node; _ } ->
                (* All of the node's evals ran and none produced a child:
                   the node is a dead end. *)
                if s_node.n_segments <> [] then emit s_node);
            drain ()
          end
        end
  in
  (match resume with
  | Some s -> stack := s.s_frontier
  | None -> (
      let crumbs0 =
        if config.use_breadcrumbs then crumbs_of_dump ctx dump else IMap.empty
      in
      let logs0 =
        if config.use_breadcrumbs then
          Res_vm.Tracer.logs dump.Res_vm.Coredump.tracer
        else []
      in
      match crash.Res_vm.Crash.kind with
      | Res_vm.Crash.Deadlock _ ->
          (* A deadlock's "crash event" is the collective blocked state; the
             blocked threads' in-progress segments are ordinary moves (the
             crashing tid's segment is typically the oldest, not the
             newest). *)
          stack :=
            [
              F_visit
                {
                  f_depth = 0;
                  f_node =
                    {
                      n_snapshot = snapshot0;
                      n_segments = [];
                      n_crumbs = crumbs0;
                      n_logs = logs0;
                      n_last_tid = crash.Res_vm.Crash.tid;
                      n_touched = [];
                    };
                };
            ]
      | _ ->
          (* Otherwise the first backward step is always the crashing
             thread's in-progress segment — evaluated eagerly (it is the
             root of every branch of the search). *)
          stats.candidates <- stats.candidates + 1;
          stats.nodes <- stats.nodes + 1;
          let { Backstep.applied; rejects = _; reversed = _; slice_skipped = _ }
              =
            Backstep.step_back ~reverse_exec:config.reverse_exec ctx snapshot0
              ~tid:crash.Res_vm.Crash.tid
              ~kind:(Backstep.K_partial (Some crash.Res_vm.Crash.kind))
          in
          stack :=
            List.filter_map
              (fun (ap : Backstep.applied) ->
                let log_match =
                  if not config.use_breadcrumbs then Some ([], logs0)
                  else
                    consume_logs ~tid:crash.Res_vm.Crash.tid
                      ap.Backstep.ap_logs logs0
                in
                match log_match with
                | None -> None
                | Some (log_cs, n_logs) ->
                    stats.feasible <- stats.feasible + 1;
                    let seg = ap.Backstep.ap_segment in
                    Some
                      (F_visit
                         {
                           f_depth = 1;
                           f_node =
                             {
                               n_snapshot =
                                 Snapshot.add_constraints
                                   ap.Backstep.ap_snapshot log_cs;
                               n_segments = [ seg ];
                               n_crumbs = crumbs0;
                               n_logs;
                               n_last_tid = crash.Res_vm.Crash.tid;
                               n_touched =
                                 seg.Suffix.seg_writes @ seg.Suffix.seg_reads;
                             };
                         }))
              applied));
  drain ();
  {
    suffixes = List.rev !out;
    stats;
    complete = not !budget_hit;
    exhausted = Budget.exhausted budget;
    suspended = !stopped;
    plan = List.rev !plan;
    shards = List.rev !shards;
  }
