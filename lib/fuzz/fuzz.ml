(** Deterministic structured fuzzing for every untrusted byte boundary.

    The system decodes eight kinds of foreign bytes: coredumps,
    checkpoints, parallel-search wire frames, daemon protocol frames,
    cache entries, cluster journal rows, IR program text, and the
    debugger's predicate/command grammars.  All of them are hostile
    input by definition — crash reports come from the wild, frames come
    from the network, files come from disks that lie.  Every decoder
    owes the same contract:

    - {b never an uncaught exception} — all failures are typed errors;
    - {b never a hang} — decode time is bounded regardless of input;
    - {b never silent acceptance} — damaged sealed bytes are detected.

    This module drives each decoder with a deterministic, seeded stream
    of cases: pristine seeds built by the real encoders, structured
    mutations of those seeds (bit flips, truncations, splices, integer
    tweaks, re-sealed inflated counts), and raw garbage.  The PRNG is a
    64-bit LCG — no wall clock anywhere in generation, so a run is
    reproducible byte-for-byte from its seed, and the per-format digest
    over (case bytes, decision) is the reproducibility witness.

    A violation is shrunk by greedy chunk deletion to a smaller input
    with the same failure kind and written to a corpus directory as a
    reproducer. *)

module Sealing = Res_core.Sealing
module Io = Res_vm.Coredump_io

(* --- deterministic PRNG --------------------------------------------- *)

(** Knuth's MMIX LCG over int64; the high 31 bits are the draw (low LCG
    bits alternate and must never be used directly). *)
module Rng = struct
  type t = { mutable s : int64 }

  let create seed = { s = Int64.of_int (((seed * 2) + 1) land max_int) }

  let draw t =
    t.s <-
      Int64.add
        (Int64.mul t.s 6364136223846793005L)
        1442695040888963407L;
    Int64.to_int (Int64.shift_right_logical t.s 33)

  let int t bound = if bound <= 0 then 0 else draw t mod bound
  let bool t = int t 2 = 1
  let byte t = Char.chr (int t 256)

  let bytes t n =
    String.init n (fun _ -> byte t)

  let pick t l = List.nth l (int t (List.length l))
end

(* --- violations ------------------------------------------------------ *)

type violation =
  | Uncaught of string  (** an exception escaped the decoder *)
  | Hang of float  (** decode exceeded the per-case deadline (seconds) *)
  | Silent_accept  (** damaged sealed bytes decoded as valid *)
  | Seed_rejected of string  (** a pristine encoder artifact failed decode *)

let violation_name = function
  | Uncaught _ -> "uncaught-exception"
  | Hang _ -> "hang"
  | Silent_accept -> "silent-accept"
  | Seed_rejected _ -> "seed-rejected"

let pp_violation ppf = function
  | Uncaught m -> Fmt.pf ppf "uncaught exception: %s" m
  | Hang s -> Fmt.pf ppf "hang: decode took %.2fs" s
  | Silent_accept -> Fmt.string ppf "silent acceptance of damaged bytes"
  | Seed_rejected m -> Fmt.pf ppf "pristine seed rejected: %s" m

(* --- format descriptors ---------------------------------------------- *)

(** One decode surface under test.  [f_decode] answers "were these bytes
    accepted?" and owes totality — any exception out of it is a
    violation.  [f_sealed] formats are checksummed envelopes: any case
    whose bytes differ from every seed {e must} be rejected.  Unsealed
    text grammars (IR, predicate, command) may accept mutants — only
    crash and hang are violations there.  [f_hostile] is a fixed corpus
    of hand-aimed nasties (depth bombs, inflated counts, overflow
    literals) run ahead of the random stream. *)
type format = {
  f_name : string;
  f_sealed : bool;
  f_seeds : string list;
  f_hostile : string list;
  f_decode : string -> bool;
}

(* --- deadline-wrapped execution -------------------------------------- *)

exception Deadline

(** Hard per-case wall bound: a decoder looping forever is broken out of
    via SIGALRM.  The soft bound below flags decoders that finish but
    take absurdly long for a single frame. *)
let hard_deadline = 5.0

let soft_deadline = 1.0

let set_timer secs =
  ignore
    (Unix.setitimer Unix.ITIMER_REAL
       { Unix.it_value = secs; it_interval = 0. })

let with_deadline f x =
  let prev =
    Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> raise Deadline))
  in
  Fun.protect
    ~finally:(fun () ->
      set_timer 0.;
      Sys.set_signal Sys.sigalrm prev)
    (fun () ->
      set_timer hard_deadline;
      f x)

(** Run one case.  [Ok accepted] when the decoder returned within
    bounds; [Error violation] otherwise. *)
let run_case fmt bytes =
  let t0 = Unix.gettimeofday () in
  match with_deadline fmt.f_decode bytes with
  | accepted ->
      let dt = Unix.gettimeofday () -. t0 in
      if dt > soft_deadline then Error (Hang dt) else Ok accepted
  | exception Deadline -> Error (Hang hard_deadline)
  | exception Stack_overflow -> Error (Uncaught "Stack_overflow")
  | exception exn -> Error (Uncaught (Printexc.to_string exn))

(* --- mutations -------------------------------------------------------- *)

let nasty_ints =
  [
    "-1";
    "0";
    "99999999999999999999";
    string_of_int max_int;
    string_of_int min_int;
    "1073741824";
    "4611686018427387903";
  ]

(* Replace a random digit run with a nasty integer — the mutation that
   attacks length prefixes and count fields specifically. *)
let tweak_int rng s =
  let n = String.length s in
  if n = 0 then s
  else
    let is_digit c = c >= '0' && c <= '9' in
    let starts = ref [] in
    String.iteri
      (fun i c ->
        if is_digit c && (i = 0 || not (is_digit s.[i - 1])) then
          starts := i :: !starts)
      s;
    match !starts with
    | [] -> s
    | l ->
        let start = Rng.pick rng l in
        let stop = ref start in
        while !stop < n && is_digit s.[!stop] do incr stop done;
        String.sub s 0 start ^ Rng.pick rng nasty_ints
        ^ String.sub s !stop (n - !stop)

let mutate_once rng s =
  let n = String.length s in
  if n = 0 then Rng.bytes rng (1 + Rng.int rng 16)
  else
    match Rng.int rng 7 with
    | 0 ->
        (* flip one byte *)
        let i = Rng.int rng n in
        let b = Bytes.of_string s in
        Bytes.set b i (Char.chr (Char.code s.[i] lxor (1 + Rng.int rng 255)));
        Bytes.to_string b
    | 1 -> String.sub s 0 (Rng.int rng n) (* truncate *)
    | 2 ->
        (* drop a chunk *)
        let i = Rng.int rng n in
        let len = 1 + Rng.int rng (n - i) in
        String.sub s 0 i ^ String.sub s (i + len) (n - i - len)
    | 3 ->
        (* insert garbage *)
        let i = Rng.int rng (n + 1) in
        String.sub s 0 i
        ^ Rng.bytes rng (1 + Rng.int rng 16)
        ^ String.sub s i (n - i)
    | 4 ->
        (* duplicate a chunk *)
        let i = Rng.int rng n in
        let len = 1 + Rng.int rng (min 64 (n - i)) in
        String.sub s 0 (i + len) ^ String.sub s i (len + (n - i - len))
    | 5 -> tweak_int rng s
    | _ ->
        (* splice with itself at a random crossover *)
        let i = Rng.int rng n and j = Rng.int rng n in
        String.sub s 0 i ^ String.sub s j (n - j)

let mutate rng s =
  let rec go s k = if k = 0 then s else go (mutate_once rng s) (k - 1) in
  go s (1 + Rng.int rng 3)

(* --- shrinking -------------------------------------------------------- *)

let same_kind a b =
  match (a, b) with
  | Uncaught _, Uncaught _ | Hang _, Hang _ -> true
  | Silent_accept, Silent_accept -> true
  | Seed_rejected _, Seed_rejected _ -> true
  | _ -> false

(** Greedy ddmin-lite: repeatedly delete chunks (halving chunk size)
    while the same violation kind reproduces; bounded by a check budget
    so shrinking a pathological case cannot itself hang the fuzzer.
    Only crash/hang violations shrink — a silent-accept reproducer is
    meaningful only as the exact accepted bytes. *)
let shrink fmt kind bytes =
  match kind with
  | Silent_accept | Seed_rejected _ -> bytes
  | Uncaught _ | Hang _ ->
      let checks = ref 0 in
      let still b =
        incr checks;
        !checks <= 400
        && match run_case fmt b with Error k -> same_kind k kind | Ok _ -> false
      in
      let b = ref bytes in
      let chunk = ref (max 1 (String.length bytes / 2)) in
      while !chunk > 0 do
        let pos = ref 0 in
        while !pos < String.length !b do
          let n = String.length !b in
          let len = min !chunk (n - !pos) in
          let candidate =
            String.sub !b 0 !pos ^ String.sub !b (!pos + len) (n - !pos - len)
          in
          if String.length candidate < n && still candidate then b := candidate
          else pos := !pos + len
        done;
        chunk := !chunk / 2
      done;
      !b

(* --- seed construction ------------------------------------------------ *)

(* Tamper with a sealed artifact and re-seal it: textual surgery on the
   payload with a fresh valid footer, so the case exercises the decoder
   proper, not just the envelope check. *)
let tamper ~header f s =
  match Sealing.validate ~header s with
  | Error _ -> s
  | Ok payload -> Sealing.seal (f payload)

let replace_first ~marker ~sub s =
  match
    let ml = String.length marker in
    let rec find i =
      if i + ml > String.length s then None
      else if String.equal (String.sub s i ml) marker then Some i
      else find (i + 1)
    in
    find 0
  with
  | None -> s
  | Some i ->
      String.sub s 0 i ^ sub
      ^ String.sub s (i + String.length marker) (String.length s - i - String.length marker)

let empty_suspended =
  {
    Res_core.Search.s_frontier = [];
    s_nodes = 0;
    s_candidates = 0;
    s_feasible = 0;
    s_emitted = 0;
    s_pruned = 0;
    s_reversed = 0;
    s_slice_skipped = 0;
    s_next_id = 0;
    s_out = [];
  }

(** Build the format descriptors.  The corpus programs/dumps seed the
    coredump, checkpoint, and protocol formats with realistic bytes —
    the same artifacts the system really ships. *)
let formats () =
  let module P = Res_serve.Protocol in
  let module W = Res_parallel.Wire in
  let reports = Res_workloads.Corpus.generate ~n_per_bug:1 () in
  let progs =
    List.map (fun r -> r.Res_workloads.Corpus.r_prog) reports
  in
  let dumps = List.map (fun r -> r.Res_workloads.Corpus.r_dump) reports in
  let prog_texts = List.map Res_ir.Prog.to_string progs in
  let dump_texts = List.map Io.to_string dumps in
  let a_prog = List.hd prog_texts in
  let a_dump = List.hd dump_texts in
  let garbage_bytes = "\x00\x01\xfe\xffgarbage\n\x00" in
  (* -- coredump v2 -- *)
  let coredump =
    {
      f_name = "coredump";
      f_sealed = true;
      f_seeds = dump_texts;
      f_hostile =
        [
          "";
          "coredump v2\n";
          "coredump v2\nend 0 0\n";
          tamper ~header:"coredump v2"
            (fun p -> replace_first ~marker:"steps " ~sub:"steps 99999999999999999999 " p)
            a_dump;
          garbage_bytes;
        ];
      f_decode =
        (fun s ->
          (* salvage mode accepts damage by design: exercised for
             crash/hang only; acceptance is the strict parse *)
          ignore (Io.of_string_result ~salvage:true s);
          Result.is_ok (Io.of_string_result s));
    }
  in
  (* -- checkpoint v3 -- *)
  let ckpt_seed =
    Res_persist.Checkpoint.to_string
      {
        Res_persist.Checkpoint.config = Res_core.Res.default_config;
        prog = List.hd progs;
        dump = List.hd dumps;
        state = Res_core.Res.initial_state Res_core.Res.default_config;
      }
  in
  let ckpt_header = "rescheckpoint v3" in
  let checkpoint =
    {
      f_name = "checkpoint";
      f_sealed = true;
      f_seeds = [ ckpt_seed ];
      f_hostile =
        [
          tamper ~header:ckpt_header
            (fun p -> replace_first ~marker:"suffixes 0" ~sub:"suffixes 1048577" p)
            ckpt_seed;
          tamper ~header:ckpt_header
            (fun p -> replace_first ~marker:"suffixes 0" ~sub:"suffixes 999999" p)
            ckpt_seed;
          tamper ~header:ckpt_header
            (fun p -> replace_first ~marker:"state 0" ~sub:"state 99999999999999999999" p)
            ckpt_seed;
          garbage_bytes;
        ];
      f_decode =
        (fun s ->
          Result.is_ok (Res_persist.Checkpoint.of_string s));
    }
  in
  (* -- parallel wire frames -- *)
  let wire_unit =
    W.encode_unit
      {
        W.u_index = 0;
        u_config = Res_core.Search.default_config;
        u_fuel = Some 1000;
        u_wall_ms = Some 250;
        u_restore = None;
        u_suspended = empty_suspended;
      }
  in
  let wire_result =
    W.encode_result
      {
        W.r_index = 0;
        r_complete = true;
        r_exhausted = None;
        r_nodes = 12;
        r_candidates = 30;
        r_feasible = 4;
        r_emitted = 2;
        r_pruned = 5;
        r_reversed = 1;
        r_slice_skipped = 0;
        r_queries = 9;
        r_suffixes = [];
      }
  in
  let wire_ckpt =
    W.encode_unit_ckpt { W.c_expr_counter = 7; c_suspended = empty_suspended }
  in
  let wire_batch =
    W.encode_batch
      {
        W.b_index = 3;
        b_outcome = "complete";
        b_bucket = "use-after-free@main";
        b_cause = "race on g";
        b_nodes = 41;
        b_pruned = 6;
        b_queries = 17;
      }
  in
  let wire =
    {
      f_name = "wire";
      f_sealed = true;
      f_seeds = [ wire_unit; wire_result; wire_ckpt; wire_batch ];
      f_hostile =
        [
          tamper ~header:"resparres v2"
            (fun p -> replace_first ~marker:"suffixes 0" ~sub:"suffixes 1048577" p)
            wire_result;
          tamper ~header:"resparunit v2"
            (fun p -> replace_first ~marker:"frontier 0" ~sub:"frontier 999999999" p)
            wire_unit;
          garbage_bytes;
        ];
      f_decode =
        (fun s ->
          Result.is_ok (W.decode_unit s)
          || Result.is_ok (W.decode_result s)
          || Result.is_ok (W.decode_unit_ckpt s)
          || Result.is_ok (W.decode_batch s));
    }
  in
  (* -- serve protocol frames -- *)
  let proto_seeds =
    [
      P.encode_request
        (P.Submit
           {
             sb_prog = a_prog;
             sb_dump = a_dump;
             sb_deadline_ms = Some 1000;
             sb_fuel = None;
           });
      P.encode_request
        (P.Triage
           {
             tg_name = "unit-00";
             tg_prog = a_prog;
             tg_dump = a_dump;
             tg_deadline_ms = None;
             tg_fuel = Some 4000;
           });
      P.encode_request (P.Fetch "req-000017");
      P.encode_request P.Status;
      P.encode_request P.Ping;
      P.encode_reply (P.Accepted { ac_id = "req-000017"; ac_queued = 3 });
      P.encode_reply
        (P.Row
           {
             rw_name = "unit-00";
             rw_outcome = "complete";
             rw_timeout = false;
             rw_elapsed_ms = 41;
             rw_bucket = "use-after-free@main";
             rw_cause = "race on g";
             rw_nodes = 12;
             rw_pruned = 3;
             rw_queries = 7;
           });
      P.encode_reply
        (P.Status_reply
           {
             st_accepted = 10;
             st_completed = 8;
             st_shed = 1;
             st_breaker_rejected = 0;
             st_recovered = 0;
             st_queued = 1;
             st_running = 1;
             st_worker_restarts = 2;
             st_breakers_open = 1;
             st_cache_hits = 4;
             st_draining = false;
             st_breakers = [ ("sig@crash", "open", 3) ];
           });
      P.encode_reply (P.Err "no such id");
    ]
  in
  let proto_status =
    P.encode_reply
      (P.Status_reply
         {
           st_accepted = 1;
           st_completed = 1;
           st_shed = 0;
           st_breaker_rejected = 0;
           st_recovered = 0;
           st_queued = 0;
           st_running = 0;
           st_worker_restarts = 0;
           st_breakers_open = 0;
           st_cache_hits = 0;
           st_draining = false;
           st_breakers = [];
         })
  in
  let protocol =
    {
      f_name = "protocol";
      f_sealed = true;
      f_seeds = proto_seeds;
      f_hostile =
        [
          tamper ~header:P.rep_header
            (fun p -> replace_first ~marker:"breakers 0" ~sub:"breakers 999999999" p)
            proto_status;
          tamper ~header:P.req_header
            (fun p -> replace_first ~marker:"prog " ~sub:"prog 4611686018427387903 " p)
            (List.hd proto_seeds);
          garbage_bytes;
        ];
      f_decode =
        (fun s ->
          Result.is_ok (P.decode_request s) || Result.is_ok (P.decode_reply s));
    }
  in
  (* -- cache entries -- *)
  let cache_body =
    Res_cache.Cache.encode_row
      {
        Res_cache.Cache.c_outcome = "complete";
        c_timeout = false;
        c_bucket = "use-after-free@main";
        c_cause = "race on g";
        c_nodes = 12;
        c_pruned = 3;
        c_queries = 7;
      }
  in
  let cache_seed =
    Sealing.seal (Res_cache.Cache.header ^ "\n" ^ cache_body ^ "\n")
  in
  let cache =
    {
      f_name = "cache";
      f_sealed = true;
      f_seeds = [ cache_seed ];
      f_hostile =
        [
          Sealing.seal (Res_cache.Cache.header ^ "\nverdict \"x\" 99999999999999999999\n");
          garbage_bytes;
        ];
      f_decode =
        (fun s ->
          match Sealing.validate ~header:Res_cache.Cache.header s with
          | Error _ -> false
          | Ok payload ->
              (* an entry is "accepted" only if a triage layer would
                 actually consume it: seal valid AND the row decodes.  A
                 sealed-but-unparsable body is an honest miss. *)
              let body =
                match String.index_opt payload '\n' with
                | Some i ->
                    String.sub payload (i + 1) (String.length payload - i - 1)
                | None -> ""
              in
              Option.is_some (Res_cache.Cache.decode_row body));
    }
  in
  (* -- cluster journal rows (verbatim reply frames, Row-only) -- *)
  let journal_seed =
    P.encode_reply
      (P.Row
         {
           rw_name = "counter-race-00";
           rw_outcome = "complete";
           rw_timeout = false;
           rw_elapsed_ms = 12;
           rw_bucket = "race@counter";
           rw_cause = "lost update";
           rw_nodes = 5;
           rw_pruned = 1;
           rw_queries = 2;
         })
  in
  let journal =
    {
      f_name = "journal";
      f_sealed = true;
      f_seeds = [ journal_seed ];
      f_hostile = [ garbage_bytes ];
      f_decode =
        (fun s ->
          match P.decode_reply s with Ok (P.Row _) -> true | _ -> false);
    }
  in
  (* -- textual IR programs -- *)
  let ir =
    {
      f_name = "ir";
      f_sealed = false;
      f_seeds = prog_texts;
      f_hostile =
        [
          "";
          "func f() { e: r1 = const 99999999999999999999 halt }";
          "func f() { e: r99999999999999999999 = const 1 halt }";
          "global g 99999999999999999999\n";
          String.make 65536 '{';
          "func f() { e: r1 = const \"";
          garbage_bytes;
        ];
      f_decode = (fun s -> Result.is_ok (Res_ir.Parser.parse_result s));
    }
  in
  (* -- debugger predicate expressions -- *)
  let predicate =
    {
      f_name = "predicate";
      f_sealed = false;
      f_seeds =
        [
          "r1 + 2 * [r3] == 16 && t2:r4 != &counter";
          "(r0 - 1) % 7 >= 0 || [&head + 8] < 0x7fff";
          "-r2";
          "1";
        ];
      f_hostile =
        [
          "";
          "0x";
          "99999999999999999999";
          String.make 50000 '(';
          String.make 50000 '-';
          String.concat "" (List.init 20000 (fun _ -> "[")) ^ "r1";
          "t99999999999999999999:r1";
          garbage_bytes;
        ];
      f_decode = (fun s -> Result.is_ok (Res_debug.Predicate.parse s));
    }
  in
  (* -- debugger command lines -- *)
  let command =
    {
      f_name = "command";
      f_sealed = false;
      f_seeds =
        [
          "step 4";
          "step-back 2";
          "continue";
          "where";
          "regs";
          "threads";
          "print r1 + 2";
          "assert 2 == 1 + 1";
          "goto 0";
          "quit";
        ];
      f_hostile =
        [
          "";
          "print " ^ String.make 50000 '(';
          "assert " ^ String.make 50000 '-';
          "step 99999999999999999999";
          "break 0x";
          garbage_bytes;
        ];
      f_decode = (fun s -> Result.is_ok (Res_debug.Command.parse s));
    }
  in
  [ coredump; checkpoint; wire; protocol; cache; journal; ir; predicate; command ]

let format_names =
  [ "coredump"; "checkpoint"; "wire"; "protocol"; "cache"; "journal"; "ir"; "predicate"; "command" ]

(* --- the campaign ----------------------------------------------------- *)

type finding = {
  fd_case : int;  (** case index within the format's stream *)
  fd_violation : violation;
  fd_bytes : string;  (** shrunk reproducer *)
  fd_path : string option;  (** where the reproducer was written *)
}

type fmt_report = {
  fr_name : string;
  fr_runs : int;  (** cases executed (seeds + hostile + random stream) *)
  fr_accepted : int;
  fr_rejected : int;
  fr_findings : finding list;
  fr_digest : string;  (** FNV-1a64 over (bytes, decision) of every case *)
}

let pp_fmt_report ppf r =
  Fmt.pf ppf "%-11s %7d %9d %9d %10d  %s" r.fr_name r.fr_runs r.fr_accepted
    r.fr_rejected
    (List.length r.fr_findings)
    r.fr_digest

let write_repro ~corpus_dir ~fmt_name ~case ~kind bytes =
  match corpus_dir with
  | None -> None
  | Some dir ->
      (try Unix.mkdir dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path =
        Filename.concat dir (Fmt.str "%s-case%06d-%s.repro" fmt_name case kind)
      in
      (try
         let oc = open_out_bin path in
         output_string oc bytes;
         close_out oc;
         Some path
       with Sys_error _ -> None)

(** Fuzz one format for [runs] random cases (after its seeds and hostile
    corpus, which always run).  Deterministic given [seed]. *)
let fuzz_format ?corpus_dir ~seed ~runs fmt =
  let rng = Rng.create (seed lxor Hashtbl.hash fmt.f_name) in
  let digest = ref (Sealing.fnv1a64 fmt.f_name) in
  let accepted = ref 0 and rejected = ref 0 and case = ref 0 in
  let findings = ref [] in
  let is_seed b = List.exists (String.equal b) fmt.f_seeds in
  let record_case bytes ~pristine =
    incr case;
    let verdict =
      match run_case fmt bytes with
      | Ok true ->
          incr accepted;
          if fmt.f_sealed && not (is_seed bytes) then Error Silent_accept
          else Ok true
      | Ok false ->
          incr rejected;
          if pristine then Error (Seed_rejected "decoder rejected its encoder's output")
          else Ok false
      | Error v -> Error v
    in
    digest :=
      Sealing.fnv1a64_fold
        (Sealing.fnv1a64_fold !digest bytes)
        (match verdict with
        | Ok true -> "+"
        | Ok false -> "-"
        | Error _ -> "!");
    match verdict with
    | Ok _ -> ()
    | Error kind ->
        let small = shrink fmt kind bytes in
        let path =
          write_repro ~corpus_dir ~fmt_name:fmt.f_name ~case:!case
            ~kind:(violation_name kind) small
        in
        findings :=
          { fd_case = !case; fd_violation = kind; fd_bytes = small; fd_path = path }
          :: !findings
  in
  List.iter (fun s -> record_case s ~pristine:true) fmt.f_seeds;
  List.iter (fun s -> record_case s ~pristine:false) fmt.f_hostile;
  for _ = 1 to runs do
    let bytes =
      match Rng.int rng 10 with
      | 0 | 1 -> Rng.bytes rng (Rng.int rng 256) (* raw garbage *)
      | _ -> mutate rng (Rng.pick rng fmt.f_seeds)
    in
    record_case bytes ~pristine:false
  done;
  {
    fr_name = fmt.f_name;
    fr_runs = !case;
    fr_accepted = !accepted;
    fr_rejected = !rejected;
    fr_findings = List.rev !findings;
    fr_digest = Printf.sprintf "%016Lx" !digest;
  }

type report = {
  r_seed : int;
  r_formats : fmt_report list;
}

let total_findings r =
  List.fold_left (fun n f -> n + List.length f.fr_findings) 0 r.r_formats

(** Run the whole campaign: every format in [only] (all when empty),
    [runs] random cases each, seeded by [seed]. *)
let run ?corpus_dir ?(only = []) ~seed ~runs () =
  let fmts =
    List.filter
      (fun f -> only = [] || List.mem f.f_name only)
      (formats ())
  in
  if fmts = [] then invalid_arg "Fuzz.run: no such format";
  {
    r_seed = seed;
    r_formats = List.map (fuzz_format ?corpus_dir ~seed ~runs) fmts;
  }

let pp_report ppf r =
  Fmt.pf ppf "@[<v>fuzz seed=%d@,%-11s %7s %9s %9s %10s  %s@," r.r_seed
    "format" "cases" "accepted" "rejected" "violations" "digest";
  List.iter (fun f -> Fmt.pf ppf "%a@," pp_fmt_report f) r.r_formats;
  List.iter
    (fun f ->
      List.iter
        (fun fd ->
          Fmt.pf ppf "VIOLATION %s case %d: %a%a@," f.fr_name fd.fd_case
            pp_violation fd.fd_violation
            Fmt.(option (fmt " (repro: %s)"))
            fd.fd_path)
        f.fr_findings)
    r.r_formats;
  Fmt.pf ppf "total violations: %d@]" (total_findings r)
