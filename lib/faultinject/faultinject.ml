(** Fault-injection self-tests for the analysis pipeline itself.

    RES's value proposition is working from whatever evidence survives a
    crash — so the pipeline must survive hostile evidence and starved
    resources.  This harness perturbs the {e analysis substrate}:

    - corrupting the coredump bytes (truncation, bit flips, garbage
      headers, empty files) before loading,
    - starving the search, solver, and symbolic-execution budgets,
    - imposing tight wall-clock deadlines and tiny fuel budgets,

    and asserts the invariant that matters: every perturbed analysis
    terminates with a {e typed} outcome — [Complete], [Partial], [Failed],
    or a classified [dump_error] — and never an uncaught exception.  The
    campaign is fully deterministic for a given seed. *)

type perturbation =
  | Truncate_dump of int  (** keep this percentage (0–99) of the dump bytes *)
  | Flip_dump_byte of int * int  (** (byte offset seed, bit): flip one bit *)
  | Empty_dump
  | Garbage_header
  | Search_starvation of int  (** search max_nodes this small *)
  | Solver_starvation of int  (** solver max_nodes this small *)
  | Symex_starvation of int  (** symexec max_steps this small *)
  | Fuel_starvation of int  (** pipeline budget of this many fuel ticks *)
  | Tight_deadline of float  (** wall-clock deadline in seconds *)

let pp_perturbation ppf = function
  | Truncate_dump pct -> Fmt.pf ppf "truncate dump to %d%%" pct
  | Flip_dump_byte (off, bit) -> Fmt.pf ppf "flip bit %d of dump byte ~%d" bit off
  | Empty_dump -> Fmt.string ppf "empty dump file"
  | Garbage_header -> Fmt.string ppf "garbage dump header"
  | Search_starvation n -> Fmt.pf ppf "search starved to %d nodes" n
  | Solver_starvation n -> Fmt.pf ppf "solver starved to %d nodes" n
  | Symex_starvation n -> Fmt.pf ppf "symexec starved to %d steps" n
  | Fuel_starvation n -> Fmt.pf ppf "budget starved to %d fuel" n
  | Tight_deadline s -> Fmt.pf ppf "%.3fs wall-clock deadline" s

(** What a perturbed analysis terminated with.  [R_dump_error] means the
    hardened loader classified the damage before analysis (which is the
    correct typed answer for an unsalvageable dump). *)
type result_kind =
  | R_complete
  | R_partial
  | R_failed
  | R_dump_error
  | R_escaped of string  (** an exception escaped: the invariant violated *)

let result_kind_name = function
  | R_complete -> "complete"
  | R_partial -> "partial"
  | R_failed -> "failed"
  | R_dump_error -> "dump-error"
  | R_escaped _ -> "ESCAPED-EXCEPTION"

type run = {
  r_workload : string;
  r_perturbation : perturbation;
  r_kind : result_kind;
  r_salvaged : bool;  (** the dump was damaged but salvage-loaded *)
  r_detail : string;
  r_elapsed : float;  (** wall-clock seconds for the whole perturbed run *)
}

type summary = {
  runs : run list;
  total : int;
  complete : int;
  partial : int;
  failed : int;
  dump_errors : int;
  salvaged : int;
  escaped : run list;  (** empty iff the pipeline held its invariant *)
}

(* --- deterministic PRNG (the campaign must not depend on global state) --- *)

type rng = { mutable s : int }

let rng_next r =
  (* 48-bit LCG; constants fit OCaml's 63-bit int on 64-bit platforms *)
  r.s <- ((r.s * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
  r.s lsr 17

let rng_below r n = if n <= 0 then 0 else rng_next r mod n

(* --- the perturbed pipeline --- *)

let small_config =
  {
    Res_core.Res.default_config with
    search =
      { Res_core.Search.default_config with max_segments = 4; max_nodes = 2_000 };
    determinism_runs = 1;
    max_attempts = 2;
  }

let outcome_kind = function
  | Res_core.Res.Complete _ -> R_complete
  | Res_core.Res.Partial _ -> R_partial
  | Res_core.Res.Failed _ -> R_failed

let perturb_dump_text text = function
  | Truncate_dump pct -> String.sub text 0 (String.length text * pct / 100)
  | Flip_dump_byte (off, bit) ->
      let b = Bytes.of_string text in
      let i =
        (* land on a payload byte, deterministically from [off] *)
        if Bytes.length b = 0 then 0 else (off * 2654435761) land max_int mod Bytes.length b
      in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit) land 0xFF));
      Bytes.to_string b
  | Empty_dump -> ""
  | Garbage_header -> "notacoredump v9\n" ^ text
  | _ -> text

let is_dump_perturbation = function
  | Truncate_dump _ | Flip_dump_byte _ | Empty_dump | Garbage_header -> true
  | _ -> false

(** Run one perturbed analysis.  Catches {e everything}: an exception that
    reaches this frame is recorded as [R_escaped], which the self-test
    asserts never happens. *)
let run_one (w : Res_workloads.Truth.t) perturbation : run =
  let t0 = Unix.gettimeofday () in
  let finish kind ?(salvaged = false) detail =
    {
      r_workload = w.Res_workloads.Truth.w_name;
      r_perturbation = perturbation;
      r_kind = kind;
      r_salvaged = salvaged;
      r_detail = detail;
      r_elapsed = Unix.gettimeofday () -. t0;
    }
  in
  try
    let dump = Res_workloads.Truth.coredump w in
    let analyze_with ?budget ctx dump =
      let outcome = Res_core.Res.analyze ~config:small_config ?budget ctx dump in
      finish (outcome_kind outcome) (Fmt.str "%a" Res_core.Res.pp_outcome outcome)
    in
    if is_dump_perturbation perturbation then
      let text = perturb_dump_text (Res_vm.Coredump_io.to_string dump) perturbation in
      match Res_vm.Coredump_io.of_string_result ~salvage:true text with
      | Error e ->
          finish R_dump_error (Res_vm.Coredump_io.dump_error_to_string e)
      | Ok { dump = loaded; salvaged } ->
          let ctx = Res_core.Backstep.make_ctx w.Res_workloads.Truth.w_prog in
          let r = analyze_with ctx loaded in
          { r with r_salvaged = salvaged <> None }
    else
      let ctx = Res_core.Backstep.make_ctx w.Res_workloads.Truth.w_prog in
      match perturbation with
      | Search_starvation n ->
          let config =
            {
              small_config with
              Res_core.Res.search =
                { small_config.Res_core.Res.search with Res_core.Search.max_nodes = n };
            }
          in
          let outcome = Res_core.Res.analyze ~config ctx dump in
          finish (outcome_kind outcome) (Fmt.str "%a" Res_core.Res.pp_outcome outcome)
      | Solver_starvation n ->
          let ctx =
            {
              ctx with
              Res_core.Backstep.solver_config =
                { ctx.Res_core.Backstep.solver_config with Res_solver.Solver.max_nodes = n };
            }
          in
          analyze_with ctx dump
      | Symex_starvation n ->
          let ctx =
            {
              ctx with
              Res_core.Backstep.sym_config =
                { ctx.Res_core.Backstep.sym_config with Res_symex.Symexec.max_steps = n };
            }
          in
          analyze_with ctx dump
      | Fuel_starvation n ->
          analyze_with ~budget:(Res_core.Budget.create ~fuel:n ()) ctx dump
      | Tight_deadline s ->
          analyze_with ~budget:(Res_core.Budget.create ~wall_seconds:s ()) ctx dump
      | Truncate_dump _ | Flip_dump_byte _ | Empty_dump | Garbage_header ->
          assert false
  with exn -> finish (R_escaped (Printexc.to_string exn)) (Printexc.to_string exn)

(* --- the campaign --- *)

let default_workloads () : Res_workloads.Truth.t list =
  [
    Res_workloads.Div_zero.workload;
    Res_workloads.Uaf.workload_variant 0;
    Res_workloads.Double_free.workload;
    Res_workloads.Semantic.workload;
    Res_workloads.Long_exec.workload_n 20;
  ]

let perturbation_of rng i =
  match i mod 9 with
  | 0 -> Truncate_dump (rng_below rng 100)
  | 1 -> Flip_dump_byte (rng_next rng, rng_below rng 8)
  | 2 -> Empty_dump
  | 3 -> Garbage_header
  | 4 -> Search_starvation (1 + rng_below rng 20)
  | 5 -> Solver_starvation (1 + rng_below rng 10)
  | 6 -> Symex_starvation (1 + rng_below rng 30)
  | 7 -> Fuel_starvation (1 + rng_below rng 10)
  | _ -> Tight_deadline (0.001 +. (float_of_int (rng_below rng 50) /. 1000.))

(** Run [runs] perturbed analyses (deterministic in [seed]), cycling
    workloads and perturbation families. *)
let campaign ?(seed = 1) ?(runs = 60) () : summary =
  let rng = { s = (seed * 2) + 1 } in
  let workloads = default_workloads () in
  let nw = List.length workloads in
  let results =
    List.init runs (fun i ->
        let w = List.nth workloads (i mod nw) in
        run_one w (perturbation_of rng i))
  in
  let count p = List.length (List.filter p results) in
  {
    runs = results;
    total = List.length results;
    complete = count (fun r -> r.r_kind = R_complete);
    partial = count (fun r -> r.r_kind = R_partial);
    failed = count (fun r -> r.r_kind = R_failed);
    dump_errors = count (fun r -> r.r_kind = R_dump_error);
    salvaged = count (fun r -> r.r_salvaged);
    escaped =
      List.filter (fun r -> match r.r_kind with R_escaped _ -> true | _ -> false)
        results;
  }

(* --- deadline compliance (acceptance: 1s honored within 10%) --- *)

type deadline_check = {
  d_deadline : float;
  d_elapsed : float;
  d_outcome : string;
  d_hit_deadline : bool;  (** the analysis was actually cut off by the clock *)
  d_within : bool;  (** elapsed <= deadline * (1 + tolerance) *)
}

(** Run the [long_exec] workload under a configuration that would search
    far past [deadline] seconds, and measure how promptly the cooperative
    deadline cuts the analysis off. *)
let deadline_compliance ?(deadline = 1.0) ?(tolerance = 0.10) () : deadline_check =
  let w = Res_workloads.Long_exec.workload_n 300 in
  let dump = Res_workloads.Truth.coredump w in
  let ctx = Res_core.Backstep.make_ctx w.Res_workloads.Truth.w_prog in
  let config =
    {
      Res_core.Res.default_config with
      search =
        {
          Res_core.Search.default_config with
          max_segments = 10_000;
          max_suffixes = 1_000;
          max_nodes = max_int;
        };
      stop_at_first_cause = false;
      max_attempts = 1;
    }
  in
  let budget = Res_core.Budget.create ~wall_seconds:deadline () in
  let t0 = Unix.gettimeofday () in
  let outcome = Res_core.Res.analyze ~config ~budget ctx dump in
  let elapsed = Unix.gettimeofday () -. t0 in
  {
    d_deadline = deadline;
    d_elapsed = elapsed;
    d_outcome = Fmt.str "%a" Res_core.Res.pp_outcome outcome;
    d_hit_deadline =
      (match outcome with
      | Res_core.Res.Partial (Res_core.Res.Deadline_exceeded, _) -> true
      | _ -> false);
    d_within = elapsed <= deadline *. (1. +. tolerance);
  }

(* --- kill-and-resume campaign (crash-safe checkpointing) --- *)

(** Where a simulated process death lands. *)
type kill_point =
  | Kill_after_nodes of int
      (** die exactly after this many expanded search nodes (the fuel
          budget makes the kill deterministic) *)
  | Kill_mid_write of int
      (** die after this many nodes {e inside} the exhaustion-time
          checkpoint write, leaving a torn [.tmp] journal to recover *)

let pp_kill_point ppf = function
  | Kill_after_nodes k -> Fmt.pf ppf "kill after %d nodes" k
  | Kill_mid_write k -> Fmt.pf ppf "kill after %d nodes, mid-checkpoint-write" k

type kr_run = {
  kr_workload : string;
  kr_kill : kill_point;
  kr_legs : int;  (** process lifetimes the analysis took (1 = never killed again) *)
  kr_equivalent : bool;  (** resumed reports bit-identical to the baseline's *)
  kr_clean_disk : bool;  (** no torn [.tmp] left; final checkpoint validates *)
  kr_detail : string;  (** diagnosis when not equivalent/clean *)
}

type kr_summary = {
  kr_runs : kr_run list;
  kr_total : int;
  kr_ok : int;
  kr_failures : kr_run list;  (** empty iff every chain reconverged cleanly *)
}

(* Exhaustive deepening (no early stop) so every workload's search is
   deep enough for kill points to land mid-analysis. *)
let kr_config =
  {
    Res_core.Res.search =
      {
        Res_core.Search.default_config with
        max_segments = 6;
        max_nodes = 2_000;
        max_suffixes = 8;
      };
    determinism_runs = 1;
    stop_at_first_cause = false;
    max_attempts = 2;
  }

(** One kill-and-resume chain: run the analysis under a fuel budget that
    dies at the kill point, then keep reloading the checkpoint and
    resuming — each resumed leg under the {e same} lethal fuel budget, so
    long analyses die and resume many times — until the analysis
    completes.  The chain must reconverge to the never-killed baseline's
    reports, bit for bit. *)
let kill_resume_one ?(every = 4) ?(dir = Filename.current_dir_name)
    (w : Res_workloads.Truth.t) (kill : kill_point) ~(baseline : string) :
    kr_run =
  let k, torn =
    match kill with Kill_after_nodes k -> (k, false) | Kill_mid_write k -> (k, true)
  in
  let path =
    Filename.concat dir (Fmt.str "kr-%s-%d%s.ckpt" w.Res_workloads.Truth.w_name k
                           (if torn then "-torn" else ""))
  in
  let cleanup () =
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      (path :: Res_vm.Coredump_io.journal_siblings path)
  in
  let finish ~legs ~equivalent ~detail =
    (* Acceptance: the chain never leaves a torn journal behind, and
       whatever checkpoint remains on disk validates. *)
    let tmp_left = Res_vm.Coredump_io.journal_siblings path <> [] in
    let final_valid =
      (not (Sys.file_exists path))
      || (match Res_persist.Checkpoint.load path with Ok _ -> true | Error _ -> false)
    in
    cleanup ();
    {
      kr_workload = w.Res_workloads.Truth.w_name;
      kr_kill = kill;
      kr_legs = legs;
      kr_equivalent = equivalent;
      kr_clean_disk = (not tmp_left) && final_valid;
      kr_detail =
        (if tmp_left then "torn .tmp journal left on disk; " else "")
        ^ (if final_valid then "" else "final checkpoint does not validate; ")
        ^ detail;
    }
  in
  try
    cleanup ();
    Res_solver.Expr.reset_counter_for_tests ();
    let dump = Res_workloads.Truth.coredump w in
    let prog = w.Res_workloads.Truth.w_prog in
    let ctx = Res_core.Backstep.make_ctx prog in
    let lethal_budget () = Res_core.Budget.create ~fuel:k () in
    let ckpt ~config ~prog ~dump ~budget =
      let base =
        Res_persist.Checkpoint.checkpointer ~every ~path ~config ~prog ~dump ()
      in
      if not torn then base
      else
        {
          base with
          Res_core.Res.ck_write =
            (fun st ->
              if Res_core.Budget.exhausted budget = None then
                base.Res_core.Res.ck_write st
              else begin
                (* The exhaustion-time write: simulate the process dying
                   halfway through it.  The atomic writer's intermediate
                   state is a [path.<pid>.<n>.tmp] journal, so a mid-write
                   death is a torn journal — and no update of [path]. *)
                let full =
                  Res_persist.Checkpoint.to_string
                    { Res_persist.Checkpoint.config; prog; dump; state = st }
                in
                let oc =
                  open_out_bin (Res_vm.Coredump_io.fresh_tmp_path path)
                in
                output_string oc (String.sub full 0 (String.length full / 2));
                close_out oc;
                Error "simulated death mid-checkpoint-write"
              end);
        }
    in
    let budget0 = lethal_budget () in
    let first =
      Res_core.Res.analyze ~config:kr_config ~budget:budget0
        ~checkpointer:(ckpt ~config:kr_config ~prog ~dump ~budget:budget0)
        ctx dump
    in
    let rec chase legs outcome =
      match outcome with
      | Res_core.Res.Partial
          ((Res_core.Res.Fuel_exhausted | Res_core.Res.Deadline_exceeded), _)
        when legs < 500 -> (
          (* The process died.  A new one reloads the checkpoint (running
             journal recovery) and resumes — under the same lethal fuel. *)
          match Res_persist.Checkpoint.load path with
          | Error e ->
              `Load_error
                (legs, Res_vm.Coredump_io.dump_error_to_string e)
          | Ok ck ->
              let ctx' =
                Res_core.Backstep.make_ctx ck.Res_persist.Checkpoint.prog
              in
              let budget = lethal_budget () in
              let cp =
                (* Only the first leg dies mid-write: later legs check
                   that recovery converges, not that it loops forever. *)
                Res_persist.Checkpoint.checkpointer ~every ~path
                  ~config:ck.Res_persist.Checkpoint.config
                  ~prog:ck.Res_persist.Checkpoint.prog
                  ~dump:ck.Res_persist.Checkpoint.dump ()
              in
              chase (legs + 1)
                (Res_core.Res.resume ~config:ck.Res_persist.Checkpoint.config
                   ~budget ~checkpointer:cp ctx'
                   ck.Res_persist.Checkpoint.dump
                   ck.Res_persist.Checkpoint.state))
      | o -> `Done (legs, o)
    in
    match chase 1 first with
    | `Load_error (legs, msg) ->
        finish ~legs ~equivalent:false
          ~detail:(Fmt.str "checkpoint load failed: %s" msg)
    | `Done (legs, outcome) ->
        let rendered =
          Res_core.Report.reports_to_string ctx
            (Res_core.Res.analysis outcome)
        in
        if String.equal rendered baseline then
          finish ~legs ~equivalent:true ~detail:""
        else
          finish ~legs ~equivalent:false
            ~detail:
              (Fmt.str "reports diverged from baseline (%s after %d legs)"
                 (Res_core.Res.outcome_name outcome) legs)
  with exn ->
    finish ~legs:0 ~equivalent:false
      ~detail:(Fmt.str "escaped exception: %s" (Printexc.to_string exn))

(** The never-killed reference run for a workload, rendered bit-stably. *)
let kr_baseline (w : Res_workloads.Truth.t) =
  Res_solver.Expr.reset_counter_for_tests ();
  let dump = Res_workloads.Truth.coredump w in
  let ctx = Res_core.Backstep.make_ctx w.Res_workloads.Truth.w_prog in
  let outcome = Res_core.Res.analyze ~config:kr_config ctx dump in
  Res_core.Report.reports_to_string ctx (Res_core.Res.analysis outcome)

(** Kill-and-resume equivalence campaign: for every workload, kill the
    analysis after [kills] nodes (plus once mid-checkpoint-write), resume
    each chain to completion, and compare its reports bit-for-bit against
    the never-killed baseline. *)
let kill_resume_campaign ?(every = 4) ?dir ?(kills = [ 1; 5; 17 ])
    ?(torn_kill = 13) ?workloads () : kr_summary =
  let workloads =
    match workloads with Some ws -> ws | None -> default_workloads ()
  in
  let runs =
    List.concat_map
      (fun w ->
        let baseline = kr_baseline w in
        List.map
          (fun kill -> kill_resume_one ~every ?dir w kill ~baseline)
          (List.map (fun k -> Kill_after_nodes k) kills
          @ [ Kill_mid_write torn_kill ]))
      workloads
  in
  let ok r = r.kr_equivalent && r.kr_clean_disk in
  {
    kr_runs = runs;
    kr_total = List.length runs;
    kr_ok = List.length (List.filter ok runs);
    kr_failures = List.filter (fun r -> not (ok r)) runs;
  }

let pp_kr_run ppf r =
  Fmt.pf ppf "%-18s %-36s -> %s in %d leg(s)%s%s" r.kr_workload
    (Fmt.str "%a" pp_kill_point r.kr_kill)
    (if r.kr_equivalent then "bit-identical" else "DIVERGED")
    r.kr_legs
    (if r.kr_clean_disk then "" else " [DIRTY DISK]")
    (if r.kr_detail = "" then "" else Fmt.str " (%s)" r.kr_detail)

let pp_kr_summary ppf s =
  Fmt.pf ppf
    "@[<v>kill-and-resume self-test: %d chains (kill, resume, compare)@,\
     bit-identical and clean: %d/%d@,\
     failures: %d@]"
    s.kr_total s.kr_ok s.kr_total (List.length s.kr_failures)

(* --- static-prune equivalence campaign --- *)

(** One workload analyzed twice — static pruning on and off — with the
    display-sorted report {e bodies} compared byte for byte.  The chain
    refuter is admissible: it may only discard candidate moves whose
    backward step would produce no children, so the two runs must report
    exactly the same defects (only the work counters may differ). *)
type pe_run = {
  pe_workload : string;
  pe_equivalent : bool;
  pe_nodes_on : int;  (** backward-step evaluations with pruning on *)
  pe_nodes_off : int;  (** … with pruning off *)
  pe_pruned : int;  (** candidate moves refuted statically *)
  pe_detail : string;  (** diagnosis when not equivalent *)
}

type pe_summary = {
  pe_runs : pe_run list;
  pe_total : int;
  pe_ok : int;
  pe_failures : pe_run list;  (** empty iff pruning is observably sound *)
}

(* Exhaustive deepening (no early stop) so pruning is exercised on every
   branch of every workload's search, not just the path to the first
   cause. *)
let pe_config ~prune =
  {
    Res_core.Res.default_config with
    search =
      {
        Res_core.Search.default_config with
        Res_core.Search.static_prune = prune;
      };
    stop_at_first_cause = false;
  }

let prune_equivalence_one (w : Res_workloads.Truth.t) : pe_run =
  let analyze ~prune =
    (* Reset the symbol counter so both runs mint identical symbol ids
       for the search prefixes they share. *)
    Res_solver.Expr.reset_counter_for_tests ();
    let dump = Res_workloads.Truth.coredump w in
    let ctx = Res_core.Backstep.make_ctx w.Res_workloads.Truth.w_prog in
    let outcome = Res_core.Res.analyze ~config:(pe_config ~prune) ctx dump in
    let a = Res_core.Res.analysis outcome in
    (Res_core.Report.report_list_to_string ctx a, a)
  in
  try
    let s_on, a_on = analyze ~prune:true in
    let s_off, a_off = analyze ~prune:false in
    let equivalent = String.equal s_on s_off in
    {
      pe_workload = w.Res_workloads.Truth.w_name;
      pe_equivalent = equivalent;
      pe_nodes_on = a_on.Res_core.Res.nodes_expanded;
      pe_nodes_off = a_off.Res_core.Res.nodes_expanded;
      pe_pruned = a_on.Res_core.Res.nodes_pruned;
      pe_detail = (if equivalent then "" else "reports diverged");
    }
  with exn ->
    {
      pe_workload = w.Res_workloads.Truth.w_name;
      pe_equivalent = false;
      pe_nodes_on = 0;
      pe_nodes_off = 0;
      pe_pruned = 0;
      pe_detail = Fmt.str "escaped exception: %s" (Printexc.to_string exn);
    }

(** Static-prune equivalence campaign over the whole workload corpus
    (every workload, both prune settings, reports compared bitwise). *)
let prune_equivalence_campaign ?workloads () : pe_summary =
  let workloads =
    match workloads with
    | Some ws -> ws
    | None -> Res_workloads.Workloads.all
  in
  let runs = List.map prune_equivalence_one workloads in
  {
    pe_runs = runs;
    pe_total = List.length runs;
    pe_ok = List.length (List.filter (fun r -> r.pe_equivalent) runs);
    pe_failures = List.filter (fun r -> not r.pe_equivalent) runs;
  }

let pp_pe_run ppf r =
  Fmt.pf ppf "%-26s %s  nodes %d -> %d (pruned %d)%s" r.pe_workload
    (if r.pe_equivalent then "bit-identical" else "DIVERGED")
    r.pe_nodes_off r.pe_nodes_on r.pe_pruned
    (if r.pe_detail = "" then "" else Fmt.str " (%s)" r.pe_detail)

let pp_pe_summary ppf s =
  let off = List.fold_left (fun a r -> a + r.pe_nodes_off) 0 s.pe_runs in
  let on = List.fold_left (fun a r -> a + r.pe_nodes_on) 0 s.pe_runs in
  Fmt.pf ppf
    "@[<v>static-prune equivalence self-test: %d workloads analyzed twice@,\
     bit-identical reports: %d/%d@,\
     backward-step evaluations: %d unpruned -> %d pruned@]"
    s.pe_total s.pe_ok s.pe_total off on

(* --- reverse-execution equivalence campaign --- *)

(** One workload analyzed twice — concrete reverse execution on and off —
    with the display-sorted report {e bodies} compared byte for byte.  The
    fast path is admissible: it only decides a step when it can prove the
    unique pre-state (or its absence) the symbolic step would have found,
    and it mints the same fresh symbols the symbolic path would, so the
    two runs must report exactly the same defects. *)
type re_run = {
  re_workload : string;
  re_equivalent : bool;
  re_reversed : int;  (** backward steps the fast path decided *)
  re_slice_skipped : int;  (** instructions skipped as outside the slice *)
  re_queries_on : int;  (** solver queries with the fast path on *)
  re_queries_off : int;  (** … with it off *)
  re_detail : string;  (** diagnosis when not equivalent *)
}

type re_summary = {
  re_runs : re_run list;
  re_total : int;
  re_ok : int;
  re_failures : re_run list;  (** empty iff reverse execution is sound *)
}

(* Exhaustive deepening (no early stop) so the fast path is exercised on
   every branch of every workload's search. *)
let re_config ~reverse =
  {
    Res_core.Res.default_config with
    search =
      {
        Res_core.Search.default_config with
        Res_core.Search.reverse_exec = reverse;
      };
    stop_at_first_cause = false;
  }

let reverse_equivalence_one (w : Res_workloads.Truth.t) : re_run =
  let analyze ~reverse =
    (* Reset the symbol counter so both runs mint identical symbol ids
       for the search prefixes they share. *)
    Res_solver.Expr.reset_counter_for_tests ();
    let dump = Res_workloads.Truth.coredump w in
    let ctx = Res_core.Backstep.make_ctx w.Res_workloads.Truth.w_prog in
    let q0 = Res_solver.Solver.queries () in
    let outcome =
      Res_core.Res.analyze ~config:(re_config ~reverse) ctx dump
    in
    let a = Res_core.Res.analysis outcome in
    (Res_core.Report.report_list_to_string ctx a, a, Res_solver.Solver.queries () - q0)
  in
  try
    let s_on, a_on, q_on = analyze ~reverse:true in
    let s_off, _a_off, q_off = analyze ~reverse:false in
    let equivalent = String.equal s_on s_off in
    {
      re_workload = w.Res_workloads.Truth.w_name;
      re_equivalent = equivalent;
      re_reversed = a_on.Res_core.Res.nodes_reversed;
      re_slice_skipped = a_on.Res_core.Res.slice_skipped;
      re_queries_on = q_on;
      re_queries_off = q_off;
      re_detail = (if equivalent then "" else "reports diverged");
    }
  with exn ->
    {
      re_workload = w.Res_workloads.Truth.w_name;
      re_equivalent = false;
      re_reversed = 0;
      re_slice_skipped = 0;
      re_queries_on = 0;
      re_queries_off = 0;
      re_detail = Fmt.str "escaped exception: %s" (Printexc.to_string exn);
    }

(** Reverse-execution equivalence campaign over the whole workload corpus
    (every workload, fast path on and off, reports compared bitwise). *)
let reverse_equivalence_campaign ?workloads () : re_summary =
  let workloads =
    match workloads with
    | Some ws -> ws
    | None -> Res_workloads.Workloads.all
  in
  let runs = List.map reverse_equivalence_one workloads in
  {
    re_runs = runs;
    re_total = List.length runs;
    re_ok = List.length (List.filter (fun r -> r.re_equivalent) runs);
    re_failures = List.filter (fun r -> not r.re_equivalent) runs;
  }

let pp_re_run ppf r =
  Fmt.pf ppf "%-26s %s  reversed %d (sliced %d), queries %d -> %d%s"
    r.re_workload
    (if r.re_equivalent then "bit-identical" else "DIVERGED")
    r.re_reversed r.re_slice_skipped r.re_queries_off r.re_queries_on
    (if r.re_detail = "" then "" else Fmt.str " (%s)" r.re_detail)

let pp_re_summary ppf s =
  let rev = List.fold_left (fun a r -> a + r.re_reversed) 0 s.re_runs in
  let q_on = List.fold_left (fun a r -> a + r.re_queries_on) 0 s.re_runs in
  let q_off = List.fold_left (fun a r -> a + r.re_queries_off) 0 s.re_runs in
  Fmt.pf ppf
    "@[<v>reverse-execution equivalence self-test: %d workloads analyzed \
     twice@,\
     bit-identical reports: %d/%d@,\
     steps decided concretely: %d@,\
     solver queries: %d symbolic -> %d with fast path@]"
    s.re_total s.re_ok s.re_total rev q_off q_on

(* --- debug-equivalence campaign -------------------------------------- *)

(** One workload debugged four times — snapshot intervals 1, 7, 64, and
    the index disabled — with the scripted-session transcripts compared
    byte for byte.  The snapshot index must only change how much replay a
    state query costs, never what any command prints: every query goes
    through the same seek path, an interval of 0 merely degenerates it to
    replay-from-zero. *)
type de_run = {
  de_workload : string;
  de_equivalent : bool;
  de_steps : int;  (** timeline length (completed suffix instructions) *)
  de_commands : int;  (** script lines driven through the session *)
  de_exit : int;  (** script exit code (must also agree across intervals) *)
  de_detail : string;  (** diagnosis when not equivalent *)
}

type de_summary = {
  de_runs : de_run list;
  de_total : int;
  de_ok : int;
  de_failures : de_run list;  (** empty iff the index never changes output *)
}

(* A session script exercising every command family, derived from the
   suffix's own trace (first written address, a mid-trace pc, the final
   value) so it is meaningful on all workloads yet fully deterministic. *)
let de_script (dump : Res_vm.Coredump.t) (trace : Res_vm.Event.t list) =
  let first_write =
    List.find_map
      (fun (e : Res_vm.Event.t) ->
        match e.Res_vm.Event.action with
        | Res_vm.Event.A_write { addr; _ } -> Some addr
        | _ -> None)
      trace
  in
  let mid_pc =
    match List.nth_opt trace (List.length trace / 2) with
    | Some e -> Some e.Res_vm.Event.pc
    | None -> None
  in
  let base =
    [
      "where";
      "threads";
      "step 3";
      "regs";
      "step-back 2";
      "where";
      "continue";
      "where";
      "list 2";
      "continue-back";
      "goto 0";
      "assert 1";
    ]
  in
  let watch_part =
    match first_write with
    | None -> []
    | Some addr ->
        let final = Res_mem.Memory.read dump.Res_vm.Coredump.mem addr in
        [
          Fmt.str "watch [0x%x]" addr;
          "continue";
          "where";
          "continue-back";
          Fmt.str "twatch [0x%x] == %d" addr final;
          Fmt.str "mem 0x%x 2" addr;
          "continue";
          Fmt.str "assert [0x%x] == %d" addr final;
        ]
  in
  let break_part =
    match mid_pc with
    | None -> []
    | Some pc ->
        [
          Fmt.str "break %s" (Res_ir.Pc.to_string pc);
          "goto 0";
          "continue";
          "breaks";
          "delete 1";
          "continue";
        ]
  in
  base @ watch_part @ break_part

let de_intervals = [ 64; 7; 1; 0 ]

let debug_equivalence_one (w : Res_workloads.Truth.t) : de_run =
  try
    let dump = Res_workloads.Truth.coredump w in
    let ctx = Res_core.Backstep.make_ctx w.Res_workloads.Truth.w_prog in
    let result =
      Res_core.Search.search
        ~config:
          { Res_core.Search.default_config with max_segments = 8; max_suffixes = 8 }
        ctx dump
    in
    let suffixes =
      let complete, rest =
        List.partition
          (fun s -> s.Res_core.Suffix.complete)
          result.Res_core.Search.suffixes
      in
      complete @ rest
    in
    let session interval =
      let rec first = function
        | [] -> failwith "no suffix reproduces the coredump"
        | suffix :: rest -> (
            match Res_debug.Session.create ~interval ctx suffix dump with
            | Ok s -> (suffix, s)
            | Error _ -> first rest)
      in
      first suffixes
    in
    let suffix, s0 = session (List.hd de_intervals) in
    let verdict = Res_core.Replay.replay ctx suffix dump in
    let script = de_script dump verdict.Res_core.Replay.trace in
    let run s =
      let r = Res_debug.Script.run_lines s script in
      (r.Res_debug.Script.transcript, r.Res_debug.Script.exit_code)
    in
    let t0, c0 = run s0 in
    let divergence =
      List.find_map
        (fun interval ->
          let _, s = session interval in
          let t, c = run s in
          if not (String.equal t t0) then
            Some (Fmt.str "transcript diverges at interval %d" interval)
          else if c <> c0 then
            Some
              (Fmt.str "exit code diverges at interval %d: %d vs %d" interval
                 c c0)
          else None)
        (List.tl de_intervals)
    in
    {
      de_workload = w.Res_workloads.Truth.w_name;
      de_equivalent = divergence = None;
      de_steps = Res_debug.Session.length s0;
      de_commands = List.length script;
      de_exit = c0;
      de_detail = Option.value divergence ~default:"";
    }
  with exn ->
    {
      de_workload = w.Res_workloads.Truth.w_name;
      de_equivalent = false;
      de_steps = 0;
      de_commands = 0;
      de_exit = -1;
      de_detail = Fmt.str "escaped exception: %s" (Printexc.to_string exn);
    }

(** Debug-equivalence campaign over the whole workload corpus: scripted
    time-travel sessions must be byte-identical across snapshot intervals
    {1, 7, 64} and with the index disabled. *)
let debug_equivalence_campaign ?workloads () : de_summary =
  let workloads =
    match workloads with
    | Some ws -> ws
    | None -> Res_workloads.Workloads.all
  in
  let runs = List.map debug_equivalence_one workloads in
  {
    de_runs = runs;
    de_total = List.length runs;
    de_ok = List.length (List.filter (fun r -> r.de_equivalent) runs);
    de_failures = List.filter (fun r -> not r.de_equivalent) runs;
  }

let pp_de_run ppf r =
  Fmt.pf ppf "%-26s %s  %d steps, %d commands, exit %d%s" r.de_workload
    (if r.de_equivalent then "byte-identical" else "DIVERGED")
    r.de_steps r.de_commands r.de_exit
    (if r.de_detail = "" then "" else Fmt.str " (%s)" r.de_detail)

let pp_de_summary ppf s =
  let steps = List.fold_left (fun a r -> a + r.de_steps) 0 s.de_runs in
  let cmds = List.fold_left (fun a r -> a + r.de_commands) 0 s.de_runs in
  let intervals =
    String.concat "," (List.map string_of_int de_intervals)
  in
  Fmt.pf ppf
    "@[<v>debug-equivalence self-test: %d workloads debugged at intervals \
     {%s}@,\
     byte-identical transcripts: %d/%d@,\
     %d timeline steps, %d commands driven@]"
    s.de_total intervals s.de_ok s.de_total steps cmds

(* --- campaign: parallel/serial equivalence --------------------------- *)

type pq_run = {
  pq_workload : string;
  pq_equivalent : bool;
  pq_units : int;  (** subtree work units farmed across all depths *)
  pq_detail : string;
}

type pq_summary = {
  pq_runs : pq_run list;
  pq_total : int;
  pq_ok : int;
  pq_jobs : int;
  pq_backend : string;
  pq_failures : pq_run list;  (** empty iff sharding is observably sound *)
}

let pq_one ~jobs ~backend (w : Res_workloads.Truth.t) : pq_run =
  let name = w.Res_workloads.Truth.w_name in
  try
    Res_solver.Expr.reset_counter_for_tests ();
    let dump = Res_workloads.Truth.coredump w in
    let prog = w.Res_workloads.Truth.w_prog in
    let ctx = Res_core.Backstep.make_ctx prog in
    let serial = Res_core.Res.analyze ctx dump in
    let s_body =
      Res_core.Report.report_list_to_string ctx (Res_core.Res.analysis serial)
    in
    Res_solver.Expr.reset_counter_for_tests ();
    let par, st =
      Res_parallel.Engine.analyze ~jobs ~backend ~shard_depth:1 ~prog ctx dump
    in
    let p_body =
      Res_core.Report.report_list_to_string ctx (Res_core.Res.analysis par)
    in
    let same_outcome =
      String.equal
        (Res_core.Res.outcome_name serial)
        (Res_core.Res.outcome_name par)
    in
    let equivalent = String.equal s_body p_body && same_outcome in
    {
      pq_workload = name;
      pq_equivalent = equivalent;
      pq_units = st.Res_parallel.Engine.e_units;
      pq_detail =
        (if equivalent then ""
         else if not same_outcome then "outcomes diverged"
         else "report bodies diverged");
    }
  with exn ->
    {
      pq_workload = name;
      pq_equivalent = false;
      pq_units = 0;
      pq_detail = Fmt.str "escaped exception: %s" (Printexc.to_string exn);
    }

(** Parallel-equivalence campaign: every workload analyzed serially and
    with the sharded engine at [jobs] workers (shard depth 1, so even
    shallow searches go through the farm/merge path); report bodies must
    match byte for byte. *)
let parallel_equivalence_campaign ?(jobs = 2) ?backend () : pq_summary =
  let backend =
    match backend with
    | Some b -> b
    | None -> Res_parallel.Pool.default_backend ()
  in
  let runs =
    List.map (pq_one ~jobs ~backend) Res_workloads.Workloads.all
  in
  {
    pq_runs = runs;
    pq_total = List.length runs;
    pq_ok = List.length (List.filter (fun r -> r.pq_equivalent) runs);
    pq_jobs = jobs;
    pq_backend = Res_parallel.Pool.backend_name backend;
    pq_failures = List.filter (fun r -> not r.pq_equivalent) runs;
  }

let pp_pq_run ppf r =
  Fmt.pf ppf "%-26s %s  (%d units)%s" r.pq_workload
    (if r.pq_equivalent then "byte-identical" else "DIVERGED")
    r.pq_units
    (if r.pq_detail = "" then "" else Fmt.str " (%s)" r.pq_detail)

let pp_pq_summary ppf s =
  Fmt.pf ppf
    "@[<v>parallel equivalence self-test: %d workloads, serial vs -j %d \
     (%s)@,byte-identical reports: %d/%d@]"
    s.pq_total s.pq_jobs s.pq_backend s.pq_ok s.pq_total

(* --- campaign: worker kill during batch triage ----------------------- *)

type wk_run = {
  wk_kill : int;  (** corpus index whose worker was SIGKILLed *)
  wk_equivalent : bool;  (** final TSV identical to the undisturbed one *)
  wk_retries : int;  (** units rescheduled by the coordinator *)
  wk_lost : int;  (** units that never produced a row *)
  wk_detail : string;
}

type wk_summary = {
  wk_runs : wk_run list;
  wk_total : int;
  wk_ok : int;
  wk_failures : wk_run list;  (** empty iff the coordinator heals every kill *)
}

let wk_items () =
  List.map
    (fun (r : Res_workloads.Corpus.report) ->
      {
        Res_parallel.Batch.it_name =
          Fmt.str "%s-%02d" r.Res_workloads.Corpus.r_bug r.r_id;
        it_prog = r.r_prog;
        it_dump = Ok r.r_dump;
      })
    (Res_workloads.Corpus.generate ~n_per_bug:2 ())

(** Worker-kill campaign: batch-triage the corpus undisturbed, then
    re-run it on forked workers with a SIGKILL landing mid-unit at each
    of [kills]; the coordinator must reschedule the murdered unit and the
    final TSV must come out identical every time.  Forked backend by
    construction (domains cannot be killed without killing the process —
    and the fork runs must precede any domains run in this process). *)
let worker_kill_campaign ?(jobs = 3) ?(kills = [ 0; 3; 7 ]) () : wk_summary =
  let items = wk_items () in
  let backend = Res_parallel.Pool.Forked in
  let baseline = Res_parallel.Batch.run ~jobs:1 ~backend items in
  let one kill =
    try
      let t = Res_parallel.Batch.run ~jobs ~backend ~kill_unit:kill items in
      let equivalent =
        String.equal baseline.Res_parallel.Batch.tsv t.Res_parallel.Batch.tsv
      in
      {
        wk_kill = kill;
        wk_equivalent = equivalent;
        wk_retries = t.Res_parallel.Batch.retries;
        wk_lost = t.Res_parallel.Batch.lost;
        wk_detail = (if equivalent then "" else "TSV diverged");
      }
    with exn ->
      {
        wk_kill = kill;
        wk_equivalent = false;
        wk_retries = 0;
        wk_lost = 0;
        wk_detail = Fmt.str "escaped exception: %s" (Printexc.to_string exn);
      }
  in
  let runs = List.map one kills in
  {
    wk_runs = runs;
    wk_total = List.length runs;
    wk_ok = List.length (List.filter (fun r -> r.wk_equivalent) runs);
    wk_failures = List.filter (fun r -> not r.wk_equivalent) runs;
  }

let pp_wk_run ppf r =
  Fmt.pf ppf "kill at unit %-3d %s  (retries %d, lost %d)%s" r.wk_kill
    (if r.wk_equivalent then "TSV identical" else "DIVERGED")
    r.wk_retries r.wk_lost
    (if r.wk_detail = "" then "" else Fmt.str " (%s)" r.wk_detail)

let pp_wk_summary ppf s =
  Fmt.pf ppf
    "@[<v>worker-kill self-test: %d SIGKILLed batch runs vs undisturbed \
     baseline@,identical TSVs: %d/%d@]"
    s.wk_total s.wk_ok s.wk_total

(* --- reporting --- *)

let pp_run ppf r =
  Fmt.pf ppf "%-18s %-32s -> %-10s%s (%.3fs)" r.r_workload
    (Fmt.str "%a" pp_perturbation r.r_perturbation)
    (result_kind_name r.r_kind)
    (if r.r_salvaged then " [salvaged]" else "")
    r.r_elapsed

let pp_summary ppf s =
  Fmt.pf ppf
    "@[<v>fault-injection self-test: %d perturbed analyses@,\
     complete %d | partial %d | failed %d | dump-error %d (salvaged %d)@,\
     escaped exceptions: %d@]"
    s.total s.complete s.partial s.failed s.dump_errors s.salvaged
    (List.length s.escaped)

let pp_deadline_check ppf d =
  Fmt.pf ppf
    "deadline %.2fs: elapsed %.3fs, cut off by clock: %b, within tolerance: %b (%s)"
    d.d_deadline d.d_elapsed d.d_hit_deadline d.d_within d.d_outcome

(* --- campaign: triage service soak ----------------------------------- *)

(** Soak-test the triage daemon the way production will hurt it: flood it
    past capacity, SIGKILL its workers mid-request, SIGKILL the daemon
    itself and restart it on the same spool, trip a circuit breaker and
    watch it recover, then drain it gracefully.  The acceptance bar is
    the service contract: {e every accepted request eventually yields a
    reply} (zero lost), and every request the service reports
    [complete] has a report body byte-identical to what a serial offline
    [res analyze] of the same dump produces.

    Fork-backed by construction (the daemon and its workers are forked
    processes), so like the worker-kill campaign it must run before any
    domains are spawned in this process. *)

type sk_summary = {
  sk_submitted : int;
  sk_accepted : int;  (** across both daemon incarnations *)
  sk_shed : int;  (** typed [Rejected_overload] replies during the flood *)
  sk_completed : int;  (** accepted requests that reached a [Result] *)
  sk_lost : int;  (** accepted requests that never got a reply: must be 0 *)
  sk_mismatched : int;
      (** completed bodies differing from offline analyze: must be 0 *)
  sk_recovered : int;  (** requests re-admitted from the spool at restart *)
  sk_worker_restarts : int;  (** supervised restarts seen by incarnation 2 *)
  sk_breaker_tripped : bool;
  sk_breaker_recovered : bool;  (** half-open probe closed it again *)
  sk_drain_exit_ok : bool;  (** SIGTERM-free drain exited 0 *)
  sk_p50_ms : int;  (** client-observed submit-to-result latency *)
  sk_p99_ms : int;
  sk_failures : string list;  (** empty iff the service kept its contract *)
}

let percentile_ms p latencies =
  match List.sort compare latencies with
  | [] -> 0
  | l ->
      let n = List.length l in
      let idx = min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1) in
      List.nth l (max 0 idx)

(** The expected report body for a dump the service completed: a serial,
    unbudgeted offline analysis with a fresh symbol counter — the same
    bit-stable projection the daemon's workers emit. *)
let offline_body prog dump =
  Res_solver.Expr.reset_counter_for_tests ();
  let ctx = Res_core.Backstep.make_ctx prog in
  let outcome = Res_core.Res.analyze ctx dump in
  Res_core.Report.report_list_to_string ctx (Res_core.Res.analysis outcome)

let serve_soak_campaign ?(dir = Filename.get_temp_dir_name ()) ?(log = ignore)
    () : sk_summary =
  let module Server = Res_serve.Server in
  let module Client = Res_serve.Client in
  let module P = Res_serve.Protocol in
  let base = Filename.concat dir (Fmt.str "res-soak-%d" (Unix.getpid ())) in
  (try Unix.mkdir base 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let socket = Filename.concat base "serve.sock" in
  let spool = Filename.concat base "spool" in
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun m -> log m; failures := m :: !failures) fmt in
  let cfg ~fi ~delay =
    {
      Server.default_config with
      Server.socket_path = socket;
      spool_dir = spool;
      jobs = 2;
      capacity = 3;
      default_deadline = Some 10.;
      breaker_threshold = 3;
      breaker_cooldown = 0.4;
      fi_kill_workers = fi;
      fi_worker_delay = delay;
    }
  in
  let start ~fi ~delay =
    match Unix.fork () with
    | 0 ->
        (try Server.run (cfg ~fi ~delay) with _ -> Unix._exit 1);
        Unix._exit 0
    | pid -> pid
  in
  let wait_ready () =
    let deadline = Unix.gettimeofday () +. 10. in
    let rec go () =
      match Client.ping ~timeout:1.0 socket with
      | Ok (P.Pong _) -> true
      | _ ->
          if Unix.gettimeofday () > deadline then false
          else begin
            Unix.sleepf 0.02;
            go ()
          end
    in
    go ()
  in
  (* corpus texts: each report submitted twice makes the flood 2x the
     daemon's total absorption (jobs + capacity) *)
  let reports = Res_workloads.Corpus.generate ~n_per_bug:1 () in
  let texts =
    List.map
      (fun (r : Res_workloads.Corpus.report) ->
        ( Fmt.str "%s-%02d" r.r_bug r.r_id,
          r.r_prog,
          r.r_dump,
          Res_ir.Prog.to_string r.r_prog,
          Res_vm.Coredump_io.to_string r.r_dump ))
      reports
  in
  let flood = texts @ texts in
  (* --- phase 1: flood a worker-killing daemon at 2x capacity.  Workers
     are slowed by injected delay so the queue pressure is deterministic:
     2 running + 3 queued absorb 5 of the 10 submissions, the rest must
     shed --- *)
  let pid1 = start ~fi:[ 2 ] ~delay:0.5 in
  if not (wait_ready ()) then fail "daemon 1 never became ready";
  let accepted = ref [] and shed = ref 0 and submitted = ref 0 in
  List.iter
    (fun (name, _, _, prog_text, dump_text) ->
      incr submitted;
      match Client.submit socket ~prog:prog_text ~dump:dump_text () with
      | Ok (conn, reply) -> (
          Client.close conn;
          match reply with
          | P.Accepted { ac_id; _ } ->
              accepted := (ac_id, name, Unix.gettimeofday ()) :: !accepted
          | P.Rejected_overload _ -> incr shed
          | r -> fail "flood submit %s: unexpected %a" name P.pp_reply r)
      | Error e -> fail "flood submit %s: %s" name (Client.error_to_string e))
    flood;
  if !shed = 0 then fail "flood at 2x capacity shed nothing";
  (* --- phase 2: SIGKILL the daemon mid-flight, restart on the spool --- *)
  (try Unix.kill pid1 Sys.sigkill with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] pid1) with Unix.Unix_error _ -> ());
  (* the small worker delay keeps the injected SIGKILL honest: without
     it the scheduler often runs the doomed child to completion before
     the daemon's kill lands *)
  let pid2 = start ~fi:[ 1 ] ~delay:0.05 in
  if not (wait_ready ()) then fail "daemon 2 never became ready after restart";
  (* --- phase 3: every accepted request must yield a reply --- *)
  let latencies = ref [] and completed = ref 0 and lost = ref 0 in
  let mismatched = ref 0 in
  List.iter
    (fun (id, name, t_submit) ->
      match Client.await_result ~deadline:60.0 socket id with
      | Ok (P.Result { rs_outcome; rs_body; _ }) ->
          incr completed;
          latencies :=
            int_of_float ((Unix.gettimeofday () -. t_submit) *. 1000.)
            :: !latencies;
          if String.equal rs_outcome "complete" then begin
            let _, prog, dump, _, _ =
              List.find (fun (n, _, _, _, _) -> String.equal n name) texts
            in
            let expected = offline_body prog dump in
            if not (String.equal rs_body expected) then begin
              incr mismatched;
              fail "%s (%s): completed body differs from offline analyze" id
                name
            end
          end
      | Ok r ->
          incr lost;
          fail "%s (%s): no result: %a" id name P.pp_reply r
      | Error e ->
          incr lost;
          fail "%s (%s): no result: %s" id name (Client.error_to_string e))
    (List.rev !accepted);
  (* --- phase 4: trip a breaker with budget-exhausting requests, then
     watch the half-open probe close it again.  The tar pit is the
     long-execution workload under fuel 1: its search needs dozens of
     nodes, so one fuel tick guarantees a Fuel_exhausted partial --- *)
  let b_w = Res_workloads.Long_exec.workload_n 50 in
  let b_name = b_w.Res_workloads.Truth.w_name in
  let b_prog = Res_ir.Prog.to_string b_w.Res_workloads.Truth.w_prog in
  let b_dump =
    Res_vm.Coredump_io.to_string (Res_workloads.Truth.coredump b_w)
  in
  let submit_exhausting () =
    match
      Client.submit_wait ~timeout:30.0 socket ~prog:b_prog ~dump:b_dump ~fuel:1
        ()
    with
    | Ok (P.Accepted _, Some (P.Result { rs_timeout; _ })) -> `Done rs_timeout
    | Ok (reply, _) -> `Rejected reply
    | Error e -> `Err (Client.error_to_string e)
  in
  let rec trip n =
    if n = 0 then true
    else
      match submit_exhausting () with
      | `Done true -> trip (n - 1)
      | `Done false ->
          fail "breaker phase: fuel-starved %s finished within budget" b_name;
          false
      | `Rejected r ->
          fail "breaker phase: submit rejected early: %a" P.pp_reply r;
          false
      | `Err e ->
          fail "breaker phase: %s" e;
          false
  in
  let tripped =
    trip 3
    &&
    match submit_exhausting () with
    | `Rejected (P.Rejected_breaker _) -> true
    | `Rejected r ->
        fail "breaker never tripped: got %a" P.pp_reply r;
        false
    | `Done _ ->
        fail "breaker never tripped: request was admitted";
        false
    | `Err e ->
        fail "breaker trip check: %s" e;
        false
  in
  let breaker_recovered =
    tripped
    && begin
         Unix.sleepf 0.5 (* past the 0.4s cooldown: next submit is the probe *)
       ;
         match
           Client.submit_wait ~timeout:30.0 socket ~prog:b_prog ~dump:b_dump ()
         with
         | Ok (P.Accepted _, Some (P.Result { rs_timeout = false; _ })) -> (
             (* probe succeeded: the breaker must be closed again *)
             match
               Client.submit_wait ~timeout:30.0 socket ~prog:b_prog
                 ~dump:b_dump ()
             with
             | Ok (P.Accepted _, Some (P.Result _)) -> true
             | Ok (r, _) ->
                 fail "breaker stayed open after a good probe: %a" P.pp_reply r;
                 false
             | Error e ->
                 fail "post-probe submit: %s" (Client.error_to_string e);
                 false)
         | Ok (r, _) ->
             fail "half-open probe was not admitted/completed: %a" P.pp_reply r;
             false
         | Error e ->
             fail "half-open probe: %s" (Client.error_to_string e);
             false
       end
  in
  (* --- phase 5: read final counters, then drain gracefully --- *)
  let recovered, restarts =
    match Client.status socket with
    | Ok (P.Status_reply { st_recovered; st_worker_restarts; _ }) ->
        (st_recovered, st_worker_restarts)
    | _ ->
        fail "status request failed";
        (0, 0)
  in
  if recovered = 0 then
    fail "restarted daemon recovered nothing from the spool";
  if restarts = 0 then
    fail "injected worker SIGKILL produced no supervised restart";
  ignore (Client.drain ~timeout:5.0 socket);
  let drain_ok =
    let rec reap tries =
      match Unix.waitpid [ Unix.WNOHANG ] pid2 with
      | 0, _ ->
          if tries = 0 then begin
            (try Unix.kill pid2 Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] pid2);
            fail "daemon 2 did not drain within 30s";
            false
          end
          else begin
            Unix.sleepf 0.05;
            reap (tries - 1)
          end
      | _, Unix.WEXITED 0 -> true
      | _, st ->
          fail "daemon 2 drain exit: %s"
            (match st with
            | Unix.WEXITED n -> Fmt.str "exit %d" n
            | Unix.WSIGNALED n -> Fmt.str "signal %d" n
            | Unix.WSTOPPED n -> Fmt.str "stopped %d" n);
          false
    in
    reap 600
  in
  {
    sk_submitted = !submitted;
    sk_accepted = List.length !accepted;
    sk_shed = !shed;
    sk_completed = !completed;
    sk_lost = !lost;
    sk_mismatched = !mismatched;
    sk_recovered = recovered;
    sk_worker_restarts = restarts;
    sk_breaker_tripped = tripped;
    sk_breaker_recovered = breaker_recovered;
    sk_drain_exit_ok = drain_ok;
    sk_p50_ms = percentile_ms 0.50 !latencies;
    sk_p99_ms = percentile_ms 0.99 !latencies;
    sk_failures = List.rev !failures;
  }

let pp_sk_summary ppf s =
  Fmt.pf ppf
    "@[<v>serve soak: %d submitted, %d accepted, %d shed, %d completed@,\
     lost %d | body mismatches %d | recovered after SIGKILL %d | worker \
     restarts %d@,\
     breaker tripped %b, recovered %b | graceful drain %b@,\
     latency p50 %dms p99 %dms@]"
    s.sk_submitted s.sk_accepted s.sk_shed s.sk_completed s.sk_lost
    s.sk_mismatched s.sk_recovered s.sk_worker_restarts s.sk_breaker_tripped
    s.sk_breaker_recovered s.sk_drain_exit_ok s.sk_p50_ms s.sk_p99_ms

(* --- campaign: multi-node cluster soak ------------------------------- *)

(** Soak-test the cluster coordinator the way a real deployment will
    hurt it: SIGKILL the coordinator mid-corpus and resume it from its
    journal, SIGKILL a node mid-corpus and watch its units reschedule,
    and partition a node behind an injected worker stall so exchanges
    time out instead of failing fast.  The acceptance bar is the
    cluster contract: {e the merged TSV is byte-identical to a
    single-node [res triage] of the same corpus under every kill
    schedule}, with zero lost units and every retry/reschedule counted.

    Fork-backed by construction (nodes, the killed coordinator, and the
    killer are forked processes), so it must run before any domains are
    spawned in this process. *)

type ck_summary = {
  ck_units : int;  (** corpus size fed to every run *)
  ck_identical : int;  (** of [ck_runs] faulted runs, TSV = single-node *)
  ck_runs : int;
  ck_recovered : int;  (** rows replayed from the journal after the
                           coordinator was SIGKILLed *)
  ck_retries : int;  (** unit re-dispatches after the node SIGKILL *)
  ck_reschedules : int;  (** re-dispatches that moved to another node *)
  ck_nodes_dead : int;  (** nodes declared dead after the SIGKILL *)
  ck_stall_failures : int;  (** exchanges cut off by the unit deadline
                                during the partition phase *)
  ck_lost : int;  (** units degraded to worker-lost, all phases: must be 0 *)
  ck_duplicates : int;  (** late rows dropped by at-most-once *)
  ck_drain_ok : bool;  (** surviving nodes drained cleanly on SIGTERM *)
  ck_failures : string list;  (** empty iff the cluster kept its contract *)
}

let cluster_soak_campaign ?(dir = Filename.get_temp_dir_name ())
    ?(log = ignore) () : ck_summary =
  let module Server = Res_serve.Server in
  let module Transport = Res_cluster.Transport in
  let module Journal = Res_cluster.Journal in
  let module C = Res_cluster.Coordinator in
  let base = Filename.concat dir (Fmt.str "res-cluster-%d" (Unix.getpid ())) in
  (try Unix.mkdir base 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun m -> log m; failures := m :: !failures) fmt in
  (* --- corpus and the single-node truth ------------------------------ *)
  let reports = Res_workloads.Corpus.generate ~n_per_bug:3 () in
  let items =
    List.map
      (fun (r : Res_workloads.Corpus.report) ->
        {
          Res_parallel.Batch.it_name = Fmt.str "%s-%02d" r.r_bug r.r_id;
          it_prog = r.r_prog;
          it_dump = Ok r.r_dump;
        })
      reports
  in
  let n_units = List.length items in
  (* fork-backed single-node baseline: domains must not exist yet *)
  let baseline =
    Res_parallel.Batch.run ~jobs:1 ~backend:Res_parallel.Pool.Forked items
  in
  let units =
    List.map
      (fun (r : Res_workloads.Corpus.report) ->
        {
          C.ci_name = Fmt.str "%s-%02d" r.r_bug r.r_id;
          ci_prog = Res_ir.Prog.to_string r.r_prog;
          ci_dump = Res_vm.Coredump_io.to_string r.r_dump;
          ci_sig = Res_usecases.Triage.wer_key r.r_dump;
        })
      reports
  in
  (* --- node fleet: bind ephemeral ports in the parent, fork each node
     on its prebound socket, then close the parent's fd copy so a killed
     node's port refuses instead of silently queueing connects --- *)
  let start_node ~name ~delay =
    let fd, port = Transport.listen_ephemeral () in
    let pid =
      match Unix.fork () with
      | 0 ->
          (try
             Server.run
               {
                 Server.default_config with
                 Server.prebound = Some fd;
                 spool_dir = Filename.concat base (name ^ "-spool");
                 jobs = 2;
                 capacity = 8;
                 default_deadline = Some 10.;
                 fi_worker_delay = delay;
               }
           with _ -> Unix._exit 1);
          Unix._exit 0
      | pid -> pid
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (pid, { Transport.host = "127.0.0.1"; port })
  in
  let pid1, addr1 = start_node ~name:"node1" ~delay:0.08 in
  let pid2, addr2 = start_node ~name:"node2" ~delay:0.08 in
  let pid3, addr3 = start_node ~name:"node3" ~delay:0.08 in
  let wait_ready addr =
    let deadline = Unix.gettimeofday () +. 10. in
    let rec go () =
      Transport.ping addr
      ||
      if Unix.gettimeofday () > deadline then false
      else begin
        Unix.sleepf 0.02;
        go ()
      end
    in
    if not (go ()) then
      fail "node %s never became ready" (Transport.addr_to_string addr)
  in
  List.iter wait_ready [ addr1; addr2; addr3 ];
  let config journal_dir =
    {
      C.default_config with
      C.nodes = [ addr1; addr2; addr3 ];
      window = 2;
      (* two consecutive failed exchanges declare a node dead: a small
         corpus must still reach the declaration before it runs out *)
      node_attempts = 2;
      journal_dir = Some journal_dir;
      log;
    }
  in
  let check_identical phase (t : C.t) =
    if t.C.stats.C.cs_lost > 0 then
      fail "%s: %d unit(s) lost" phase t.C.stats.C.cs_lost;
    if String.equal t.C.tsv baseline.Res_parallel.Batch.tsv then true
    else begin
      fail "%s: merged TSV differs from single-node triage" phase;
      false
    end
  in
  (* poll a journal directory until [want] rows exist (how the campaign
     times its kills to land mid-corpus) *)
  let await_rows journal want =
    let deadline = Unix.gettimeofday () +. 30. in
    let rec go () =
      Journal.count journal >= want
      || Unix.gettimeofday () > deadline
         && begin
              fail "journal %s never reached %d rows" journal want;
              false
            end
      || begin
           Unix.sleepf 0.01;
           go ()
         end
    in
    go ()
  in
  (* --- phase 1: SIGKILL the coordinator mid-corpus, resume from its
     journal.  The first incarnation is a forked child; the parent waits
     for a few journaled rows, kills it, and re-runs the same corpus on
     the same journal in-process --- *)
  let journal1 = Filename.concat base "journal1" in
  let co_pid =
    match Unix.fork () with
    | 0 ->
        (try ignore (C.run ~config:(config journal1) units)
         with _ -> Unix._exit 1);
        Unix._exit 0
    | pid -> pid
  in
  ignore (await_rows journal1 3);
  (try Unix.kill co_pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] co_pid) with Unix.Unix_error _ -> ());
  let t1 = C.run ~config:(config journal1) units in
  let identical1 = check_identical "coordinator-kill" t1 in
  if t1.C.stats.C.cs_recovered < 3 then
    fail "coordinator-kill: resumed run recovered only %d journaled row(s)"
      t1.C.stats.C.cs_recovered;
  (* --- phase 2: SIGKILL a node mid-corpus.  A forked killer waits for
     the run to be underway (journaled rows), then SIGKILLs node 2; its
     units must reschedule onto the survivors --- *)
  let journal2 = Filename.concat base "journal2" in
  let killer =
    match Unix.fork () with
    | 0 ->
        let deadline = Unix.gettimeofday () +. 30. in
        let rec poll () =
          if Journal.count journal2 >= 1 then
            try Unix.kill pid2 Sys.sigkill with Unix.Unix_error _ -> ()
          else if Unix.gettimeofday () < deadline then begin
            Unix.sleepf 0.01;
            poll ()
          end
        in
        poll ();
        Unix._exit 0
    | pid -> pid
  in
  let t2 = C.run ~config:(config journal2) units in
  (try ignore (Unix.waitpid [] killer) with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] pid2) with Unix.Unix_error _ -> ());
  let identical2 = check_identical "node-kill" t2 in
  if t2.C.stats.C.cs_retries = 0 then
    fail "node-kill: no unit was ever retried";
  if t2.C.stats.C.cs_nodes_dead = 0 then
    fail "node-kill: the SIGKILLed node was never declared dead";
  (* --- phase 3: partition a node behind an injected stall.  Node 4's
     workers sleep far past the unit deadline, so every exchange routed
     to it times out mid-wait and fails over to the healthy nodes --- *)
  let pid4, addr4 = start_node ~name:"node4" ~delay:3.0 in
  wait_ready addr4;
  let journal3 = Filename.concat base "journal3" in
  let t3 =
    C.run
      ~config:
        {
          (config journal3) with
          C.nodes = [ addr1; addr4; addr3 ];
          unit_deadline = 1.0;
        }
      units
  in
  let identical3 = check_identical "partition" t3 in
  if t3.C.stats.C.cs_node_failures = 0 then
    fail "partition: no exchange was ever cut off by the unit deadline";
  (* --- drain: the surviving healthy nodes must exit 0 on SIGTERM; the
     stalled node still has sleeping workers, so it is killed --- *)
  let reap_drained name pid =
    (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
    let rec reap tries =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
          if tries = 0 then begin
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] pid);
            fail "%s did not drain within 30s" name;
            false
          end
          else begin
            Unix.sleepf 0.05;
            reap (tries - 1)
          end
      | _, Unix.WEXITED 0 -> true
      | _, st ->
          fail "%s drain exit: %s" name
            (match st with
            | Unix.WEXITED c -> Fmt.str "exit %d" c
            | Unix.WSIGNALED c -> Fmt.str "signal %d" c
            | Unix.WSTOPPED c -> Fmt.str "stopped %d" c);
          false
    in
    reap 600
  in
  let drain1 = reap_drained "node1" pid1 in
  let drain3 = reap_drained "node3" pid3 in
  (try Unix.kill pid4 Sys.sigkill with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] pid4) with Unix.Unix_error _ -> ());
  {
    ck_units = n_units;
    ck_identical =
      List.length (List.filter Fun.id [ identical1; identical2; identical3 ]);
    ck_runs = 3;
    ck_recovered = t1.C.stats.C.cs_recovered;
    ck_retries = t2.C.stats.C.cs_retries;
    ck_reschedules = t2.C.stats.C.cs_reschedules;
    ck_nodes_dead = t2.C.stats.C.cs_nodes_dead;
    ck_stall_failures = t3.C.stats.C.cs_node_failures;
    ck_lost =
      t1.C.stats.C.cs_lost + t2.C.stats.C.cs_lost + t3.C.stats.C.cs_lost;
    ck_duplicates =
      t1.C.stats.C.cs_duplicates + t2.C.stats.C.cs_duplicates
      + t3.C.stats.C.cs_duplicates;
    ck_drain_ok = drain1 && drain3;
    ck_failures = List.rev !failures;
  }

let pp_ck_summary ppf s =
  Fmt.pf ppf
    "@[<v>cluster soak: %d units, %d/%d faulted runs byte-identical to \
     single-node triage@,\
     coordinator kill: %d rows recovered from journal | node kill: %d \
     retries, %d reschedules, %d dead | partition: %d deadline cutoffs@,\
     lost %d | duplicates dropped %d | graceful drain %b@]"
    s.ck_units s.ck_identical s.ck_runs s.ck_recovered s.ck_retries
    s.ck_reschedules s.ck_nodes_dead s.ck_stall_failures s.ck_lost
    s.ck_duplicates s.ck_drain_ok

(* --- campaign: byzantine node ---------------------------------------- *)

(** Prove the coordinator survives a {e lying} node, not just a dead
    one.  Three TCP node daemons serve the corpus; one is forked with a
    result-corruption fault injected ([fi_corrupt_rows]) so it computes
    honestly and then falsifies the row it returns.  Two lies are
    tried, each against the defense built for it:

    - {b wrong unit name} (caught by the structural identity check that
      runs on every row): the reply claims to answer a unit that was
      never asked;
    - {b fabricated verdict fields} (caught only by the probabilistic
      replay spot-check, [spot_check = 1] here so every row is
      re-derived locally): the reply is structurally perfect but its
      bucket, cause, and node count are invented.

    In both phases the campaign asserts the lie was rejected
    ([cs_byzantine] > 0), the liar was quarantined via the registry's
    Dead path, its units rescheduled onto honest nodes, and the merged
    TSV came out byte-identical to fork-backed single-node triage with
    zero lost units — corrupted answers must cost retries, never
    results.

    Fork-backed by construction (every node is a forked process), so it
    must run before any domains are spawned in this process. *)

type bz_summary = {
  bz_units : int;  (** corpus size fed to every run *)
  bz_identical : int;  (** of [bz_runs], TSV byte-identical to single-node *)
  bz_runs : int;
  bz_rejected_name : int;  (** rows rejected by the identity check *)
  bz_rejected_fields : int;  (** rows rejected by the replay spot-check *)
  bz_reschedules : int;  (** re-dispatches that moved off the liar *)
  bz_nodes_dead : int;  (** liars declared dead, both phases *)
  bz_lost : int;  (** units degraded to worker-lost: must be 0 *)
  bz_drain_ok : bool;  (** honest nodes drained cleanly on SIGTERM *)
  bz_failures : string list;  (** empty iff every lie was caught *)
}

let byzantine_campaign ?(dir = Filename.get_temp_dir_name ()) ?(log = ignore)
    () : bz_summary =
  let module Server = Res_serve.Server in
  let module Transport = Res_cluster.Transport in
  let module C = Res_cluster.Coordinator in
  let base = Filename.concat dir (Fmt.str "res-byzantine-%d" (Unix.getpid ())) in
  (try Unix.mkdir base 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun m -> log m; failures := m :: !failures) fmt in
  (* --- corpus and the single-node truth ------------------------------ *)
  let reports = Res_workloads.Corpus.generate ~n_per_bug:3 () in
  let items =
    List.map
      (fun (r : Res_workloads.Corpus.report) ->
        {
          Res_parallel.Batch.it_name = Fmt.str "%s-%02d" r.r_bug r.r_id;
          it_prog = r.r_prog;
          it_dump = Ok r.r_dump;
        })
      reports
  in
  let n_units = List.length items in
  (* fork-backed single-node baseline: domains must not exist yet *)
  let baseline =
    Res_parallel.Batch.run ~jobs:1 ~backend:Res_parallel.Pool.Forked items
  in
  let units =
    List.map
      (fun (r : Res_workloads.Corpus.report) ->
        {
          C.ci_name = Fmt.str "%s-%02d" r.r_bug r.r_id;
          ci_prog = Res_ir.Prog.to_string r.r_prog;
          ci_dump = Res_vm.Coredump_io.to_string r.r_dump;
          ci_sig = Res_usecases.Triage.wer_key r.r_dump;
        })
      reports
  in
  (* The coordinator routes unit [u] to node [fnv1a32 ci_sig mod 3]; put
     the liar at the index that owns the most units so the lie is
     guaranteed traffic, deterministically. *)
  let liar_slot =
    let counts = Array.make 3 0 in
    List.iter
      (fun u ->
        let i = Res_vm.Coredump_io.fnv1a32 u.C.ci_sig mod 3 in
        counts.(i) <- counts.(i) + 1)
      units;
    let best = ref 0 in
    Array.iteri (fun i c -> if c > counts.(!best) then best := i) counts;
    !best
  in
  let start_node ~name ~corrupt =
    let fd, port = Transport.listen_ephemeral () in
    let pid =
      match Unix.fork () with
      | 0 ->
          (try
             Server.run
               {
                 Server.default_config with
                 Server.prebound = Some fd;
                 spool_dir = Filename.concat base (name ^ "-spool");
                 jobs = 2;
                 capacity = 8;
                 default_deadline = Some 10.;
                 fi_corrupt_rows = corrupt;
               }
           with _ -> Unix._exit 1);
          Unix._exit 0
      | pid -> pid
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (pid, { Transport.host = "127.0.0.1"; port })
  in
  let wait_ready addr =
    let deadline = Unix.gettimeofday () +. 10. in
    let rec go () =
      Transport.ping addr
      ||
      if Unix.gettimeofday () > deadline then false
      else begin
        Unix.sleepf 0.02;
        go ()
      end
    in
    if not (go ()) then
      fail "node %s never became ready" (Transport.addr_to_string addr)
  in
  let pid_h1, addr_h1 = start_node ~name:"honest1" ~corrupt:"" in
  let pid_h2, addr_h2 = start_node ~name:"honest2" ~corrupt:"" in
  List.iter wait_ready [ addr_h1; addr_h2 ];
  (* honest nodes fill the non-liar slots in index order *)
  let fleet liar_addr =
    match liar_slot with
    | 0 -> [ liar_addr; addr_h1; addr_h2 ]
    | 1 -> [ addr_h1; liar_addr; addr_h2 ]
    | _ -> [ addr_h1; addr_h2; liar_addr ]
  in
  let config ~nodes ~spot_check journal_dir =
    {
      C.default_config with
      C.nodes;
      window = 2;
      node_attempts = 2;
      spot_check;
      journal_dir = Some journal_dir;
      log;
    }
  in
  let check_identical phase (t : C.t) =
    if t.C.stats.C.cs_lost > 0 then
      fail "%s: %d unit(s) lost" phase t.C.stats.C.cs_lost;
    if String.equal t.C.tsv baseline.Res_parallel.Batch.tsv then true
    else begin
      fail "%s: merged TSV differs from single-node triage" phase;
      false
    end
  in
  let check_caught phase (t : C.t) =
    if t.C.stats.C.cs_byzantine = 0 then
      fail "%s: no corrupted row was ever rejected" phase;
    if t.C.stats.C.cs_nodes_dead = 0 then
      fail "%s: the lying node was never quarantined" phase;
    if t.C.stats.C.cs_reschedules = 0 then
      fail "%s: no unit was ever rescheduled off the liar" phase
  in
  (* --- phase A: wrong-name corruption vs. the identity check --------- *)
  let pid_la, addr_la = start_node ~name:"liar-name" ~corrupt:"name" in
  wait_ready addr_la;
  let ta =
    C.run
      ~config:
        (config ~nodes:(fleet addr_la) ~spot_check:0
           (Filename.concat base "journalA"))
      units
  in
  let identical_a = check_identical "wrong-name" ta in
  check_caught "wrong-name" ta;
  (try Unix.kill pid_la Sys.sigkill with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] pid_la) with Unix.Unix_error _ -> ());
  (* --- phase B: plausible fabricated fields vs. the replay oracle.
     The row is structurally perfect, so only re-deriving the verdict
     locally can expose it; spot_check = 1 replays every row --- *)
  let pid_lb, addr_lb = start_node ~name:"liar-fields" ~corrupt:"fields" in
  wait_ready addr_lb;
  let tb =
    C.run
      ~config:
        (config ~nodes:(fleet addr_lb) ~spot_check:1
           (Filename.concat base "journalB"))
      units
  in
  let identical_b = check_identical "fabricated-fields" tb in
  check_caught "fabricated-fields" tb;
  (try Unix.kill pid_lb Sys.sigkill with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] pid_lb) with Unix.Unix_error _ -> ());
  (* --- drain: the honest nodes must exit 0 on SIGTERM ---------------- *)
  let reap_drained name pid =
    (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
    let rec reap tries =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
          if tries = 0 then begin
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] pid);
            fail "%s did not drain within 30s" name;
            false
          end
          else begin
            Unix.sleepf 0.05;
            reap (tries - 1)
          end
      | _, Unix.WEXITED 0 -> true
      | _, st ->
          fail "%s drain exit: %s" name
            (match st with
            | Unix.WEXITED c -> Fmt.str "exit %d" c
            | Unix.WSIGNALED c -> Fmt.str "signal %d" c
            | Unix.WSTOPPED c -> Fmt.str "stopped %d" c);
          false
    in
    reap 600
  in
  let drain1 = reap_drained "honest1" pid_h1 in
  let drain2 = reap_drained "honest2" pid_h2 in
  {
    bz_units = n_units;
    bz_identical =
      List.length (List.filter Fun.id [ identical_a; identical_b ]);
    bz_runs = 2;
    bz_rejected_name = ta.C.stats.C.cs_byzantine;
    bz_rejected_fields = tb.C.stats.C.cs_byzantine;
    bz_reschedules = ta.C.stats.C.cs_reschedules + tb.C.stats.C.cs_reschedules;
    bz_nodes_dead = ta.C.stats.C.cs_nodes_dead + tb.C.stats.C.cs_nodes_dead;
    bz_lost = ta.C.stats.C.cs_lost + tb.C.stats.C.cs_lost;
    bz_drain_ok = drain1 && drain2;
    bz_failures = List.rev !failures;
  }

let pp_bz_summary ppf s =
  Fmt.pf ppf
    "@[<v>byzantine: %d units, %d/%d lying-node runs byte-identical to \
     single-node triage@,\
     wrong-name rows rejected %d | fabricated-field rows rejected %d | %d \
     reschedules off the liar | %d liar(s) quarantined@,\
     lost %d | graceful drain %b@]"
    s.bz_units s.bz_identical s.bz_runs s.bz_rejected_name
    s.bz_rejected_fields s.bz_reschedules s.bz_nodes_dead s.bz_lost
    s.bz_drain_ok

(* --- campaign: result-cache chaos ------------------------------------ *)

(** Chaos-test the content-addressed result cache the way a hostile disk
    will hurt it: tear its atomic-writer journals, flip bits in sealed
    entries, replace every entry with garbage, and inject ENOSPC / EIO /
    failed-fsync / torn-write faults into every cache I/O — then assert
    the crash-only contract: {e every} run, however damaged or starved
    the cache, produces a triage TSV byte-identical to the uncached
    baseline.  A garbage cache must behave exactly like a cold cache
    (quarantine + recompute + re-store), and a cache that cannot even
    create its directory must degrade to pure recompute — never to an
    exception, never to wrong bytes.

    Fork-backed by construction (batch workers are forked processes and
    the injector is process-global), so like the other fork campaigns it
    must run before any domains are spawned in this process. *)

type cc_summary = {
  cc_units : int;  (** corpus size fed to every run *)
  cc_runs : int;  (** damaged/faulted/warm runs compared to the baseline *)
  cc_identical : int;  (** of those, TSV byte-identical: must equal [cc_runs] *)
  cc_cold_stores : int;  (** entries stored by the pristine cold run *)
  cc_warm_hits : int;  (** rows served from cache by the pristine warm run *)
  cc_quarantined : int;  (** damaged entries moved aside across all phases *)
  cc_store_failures : int;  (** stores dropped on injected disk faults *)
  cc_injected : int;  (** cache I/O operations made to fail *)
  cc_failures : string list;  (** empty iff the cache kept its contract *)
}

let cache_chaos_campaign ?(dir = Filename.get_temp_dir_name ())
    ?(log = ignore) () : cc_summary =
  let module Cache = Res_cache.Cache in
  let module Batch = Res_parallel.Batch in
  let module Shim = Res_core.Ioshim in
  let base = Filename.concat dir (Fmt.str "res-cache-chaos-%d" (Unix.getpid ())) in
  (try Unix.mkdir base 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun m -> log m; failures := m :: !failures) fmt in
  let under d path =
    let n = String.length d in
    String.length path > n && String.equal (String.sub path 0 n) d
  in
  let tmp_left d =
    match Sys.readdir d with
    | exception Sys_error _ -> false
    | es ->
        Array.exists
          (fun e ->
            Filename.check_suffix e ".tmp"
            || Filename.extension e = ".tmp")
          es
  in
  let backend = Res_parallel.Pool.Forked in
  let items = wk_items () in
  let n_units = List.length items in
  (* the truth every run must reproduce: an uncached fork-backed triage *)
  let baseline = Batch.run ~jobs:1 ~backend items in
  let runs = ref 0 and identical = ref 0 in
  let quarantined = ref 0 and store_failures = ref 0 and injected = ref 0 in
  let drain_stats c =
    let s = Cache.stats c in
    quarantined := !quarantined + s.Cache.quarantined;
    store_failures := !store_failures + s.Cache.store_failures
  in
  let run_cached phase c =
    incr runs;
    log (Fmt.str "run: %s" phase);
    match Batch.run ~jobs:1 ~backend ~cache:c items with
    | t ->
        if String.equal t.Batch.tsv baseline.Batch.tsv then incr identical
        else fail "%s: TSV diverged from the uncached baseline" phase;
        drain_stats c;
        Some t
    | exception exn ->
        drain_stats c;
        fail "%s: escaped exception: %s" phase (Printexc.to_string exn);
        None
  in
  (* --- phase 1: cold fill, then a fully warm replay ------------------ *)
  let dir1 = Filename.concat base "steady" in
  let c_cold = Cache.openr dir1 in
  let cold_stores =
    match run_cached "cold" c_cold with
    | Some t ->
        if t.Batch.cache_hits <> 0 then
          fail "cold: %d hit(s) served from an empty cache" t.Batch.cache_hits;
        (Cache.stats c_cold).Cache.stores
    | None -> 0
  in
  if Cache.entry_count dir1 < n_units then
    fail "cold: only %d/%d entries on disk after the fill" (Cache.entry_count dir1)
      n_units;
  let warm_hits =
    match run_cached "warm" (Cache.openr dir1) with
    | Some t ->
        if t.Batch.cache_hits < n_units then
          fail "warm: only %d/%d rows came from the cache" t.Batch.cache_hits
            n_units;
        t.Batch.cache_hits
    | None -> 0
  in
  (* --- phase 2: torn journal, bit-flipped entry, garbage entry -------- *)
  (match
     Sys.readdir dir1 |> Array.to_list
     |> List.filter (fun e -> Filename.check_suffix e ".entry")
     |> List.sort compare
   with
  | [] -> fail "corrupt: no entries to damage"
  | e0 :: rest ->
      let p0 = Filename.concat dir1 e0 in
      (* a torn atomic-writer journal, as left by a writer killed
         mid-[write(2)]: reopen must delete it, never promote it *)
      let torn = Res_vm.Coredump_io.fresh_tmp_path p0 in
      let oc = open_out_bin torn in
      output_string oc "rescache v1\nhalf a sealed entry";
      close_out oc;
      (* one flipped bit in a sealed entry: the seal must catch it *)
      (match Res_vm.Coredump_io.read_file p0 with
      | Ok src when String.length src > 0 ->
          let b = Bytes.of_string src in
          let i = Bytes.length b / 2 in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
          let oc = open_out_bin p0 in
          output_bytes oc b;
          close_out oc
      | _ -> fail "corrupt: could not read %s back" e0);
      (* and one entry replaced outright *)
      (match rest with
      | e1 :: _ ->
          let oc = open_out_bin (Filename.concat dir1 e1) in
          output_string oc "not a sealed entry at all\n";
          close_out oc
      | [] -> ()));
  let c_dam = Cache.openr dir1 in
  if tmp_left dir1 then fail "corrupt: torn .tmp journal survived reopen";
  (match run_cached "corrupt" c_dam with
  | Some t ->
      if (Cache.stats c_dam).Cache.quarantined = 0 then
        fail "corrupt: damaged entries were never quarantined";
      if t.Batch.cache_hits >= n_units then
        fail "corrupt: damaged entries were served as hits"
  | None -> ());
  (* --- phase 3: every entry replaced by deterministic garbage.  The
     contract under total corruption: quarantine everything, recompute
     everything, re-store everything — a garbage cache IS a cold cache *)
  let rng = { s = 0xC0FFEE } in
  Array.iter
    (fun e ->
      if Filename.check_suffix e ".entry" then begin
        let oc = open_out_bin (Filename.concat dir1 e) in
        for _ = 1 to 64 + rng_below rng 128 do
          output_char oc (Char.chr (rng_below rng 256))
        done;
        close_out oc
      end)
    (Sys.readdir dir1);
  let c_garbage = Cache.openr dir1 in
  (match run_cached "garbage" c_garbage with
  | Some t ->
      if t.Batch.cache_hits <> 0 then
        fail "garbage: %d garbage entr(ies) served as hits" t.Batch.cache_hits;
      if (Cache.stats c_garbage).Cache.quarantined < n_units then
        fail "garbage: only %d/%d garbage entries quarantined"
          (Cache.stats c_garbage).Cache.quarantined n_units
  | None -> ());
  (* the garbage run must have healed the cache: warm again, full hits *)
  (match run_cached "healed" (Cache.openr dir1) with
  | Some t ->
      if t.Batch.cache_hits < n_units then
        fail "healed: only %d/%d hits after the garbage run re-stored"
          t.Batch.cache_hits n_units
  | None -> ());
  (* --- phase 4: injected read faults on a warm cache.  Every lookup
     hits EIO; the cache must quarantine, recompute, and re-store ------- *)
  let c_eio = Cache.openr dir1 in
  let read_inj op path =
    match op with
    | Shim.Read when under dir1 path ->
        incr injected;
        Some Shim.Eio
    | _ -> None
  in
  (match
     Shim.with_injector read_inj (fun () -> run_cached "read-fault" c_eio)
   with
  | Some t ->
      if t.Batch.cache_hits <> 0 then
        fail "read-fault: %d hit(s) served through injected EIO"
          t.Batch.cache_hits
  | None -> ());
  (* --- phase 5: injected store faults, one fault family at a time.
     Every store fails (leaving realistic torn journals); the run must
     shrug (store_failures), stay byte-identical, and the next reopen
     must sweep the wreckage ------------------------------------------- *)
  List.iter
    (fun f ->
      let name = Shim.fault_name f in
      let cdir = Filename.concat base ("storm-" ^ name) in
      let c = Cache.openr cdir in
      let inj op path =
        match op with
        | Shim.Write when under cdir path ->
            incr injected;
            Some f
        | _ -> None
      in
      (match
         Shim.with_injector inj (fun () ->
             run_cached (Fmt.str "store-fault %s" name) c)
       with
      | Some _ ->
          if (Cache.stats c).Cache.store_failures = 0 then
            fail "store-fault %s: no store ever failed under injection" name;
          if (Cache.stats c).Cache.stores <> 0 then
            fail "store-fault %s: %d store(s) claimed success under injection"
              name (Cache.stats c).Cache.stores
      | None -> ());
      (* reopen sweeps torn journals; the cache is simply still cold *)
      let c2 = Cache.openr cdir in
      if tmp_left cdir then
        fail "store-fault %s: torn .tmp journals survived reopen" name;
      (match run_cached (Fmt.str "recold %s" name) c2 with
      | Some _ ->
          if Cache.entry_count cdir < n_units then
            fail "recold %s: only %d/%d entries stored once the disk healed"
              name (Cache.entry_count cdir) n_units
      | None -> ()))
    [ Shim.Enospc; Shim.Eio; Shim.Fsync_fail; Shim.Torn 11 ];
  (* --- phase 6: a randomized (but deterministic) storm: roughly one in
     three cache I/Os fails, fault family drawn per-operation ----------- *)
  let dir6 = Filename.concat base "storm-random" in
  let storm_rng = { s = 0xBADD15C } in
  let storm_inj op path =
    if not (under dir6 path) then None
    else
      match op with
      | Shim.Fsync_dir -> None (* tolerated by design; keep the rng honest *)
      | _ ->
          if rng_below storm_rng 3 = 0 then begin
            incr injected;
            Some
              (match rng_below storm_rng 4 with
              | 0 -> Shim.Enospc
              | 1 -> Shim.Eio
              | 2 -> Shim.Fsync_fail
              | _ -> Shim.Torn (1 + rng_below storm_rng 40))
          end
          else None
  in
  Shim.with_injector storm_inj (fun () ->
      ignore (run_cached "random-storm cold" (Cache.openr dir6));
      ignore (run_cached "random-storm warm" (Cache.openr dir6)));
  let c6 = Cache.openr dir6 in
  if tmp_left dir6 then fail "random-storm: torn .tmp journals survived reopen";
  ignore (run_cached "random-storm healed" c6);
  (* --- phase 7: the cache directory itself cannot be created.  openr
     must not raise, and the run must degrade to pure recompute --------- *)
  let dir7 = Filename.concat base "no-dir" in
  let mkdir_inj op path =
    match op with
    | Shim.Mkdir when String.equal path dir7 || under dir7 path ->
        incr injected;
        Some Shim.Eio
    | _ -> None
  in
  let c7 = Shim.with_injector mkdir_inj (fun () -> Cache.openr dir7) in
  (match run_cached "no-dir" c7 with
  | Some t ->
      if t.Batch.cache_hits <> 0 then
        fail "no-dir: hits from a cache whose directory does not exist";
      if (Cache.stats c7).Cache.store_failures = 0 then
        fail "no-dir: stores into a missing directory claimed success"
  | None -> ());
  {
    cc_units = n_units;
    cc_runs = !runs;
    cc_identical = !identical;
    cc_cold_stores = cold_stores;
    cc_warm_hits = warm_hits;
    cc_quarantined = !quarantined;
    cc_store_failures = !store_failures;
    cc_injected = !injected;
    cc_failures = List.rev !failures;
  }

let pp_cc_summary ppf s =
  Fmt.pf ppf
    "@[<v>cache chaos: %d units, %d/%d damaged and faulted runs \
     byte-identical to the uncached baseline@,\
     cold stores %d | warm hits %d | quarantined %d | store failures %d | \
     faults injected %d@,\
     failures: %d@]"
    s.cc_units s.cc_identical s.cc_runs s.cc_cold_stores s.cc_warm_hits
    s.cc_quarantined s.cc_store_failures s.cc_injected
    (List.length s.cc_failures)
