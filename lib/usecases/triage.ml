(** Bug-report triaging (paper §3.1).

    Two bucketing strategies over a stream of (program, coredump) reports:

    - [wer_key]: the state of the art — hash the crash stack and failure
      family, no execution analysis (Windows Error Reporting style);
    - [res_key]: run RES, replay the synthesized suffix, and bucket by the
      classified root-cause signature.

    Plus clustering-quality metrics against ground truth, so benchmarks can
    reproduce the paper's "WER mis-buckets up to 37%" shape. *)

module SMap = Map.Make (String)

(** One incoming report: a program and its coredump. *)
type report = { t_id : int; t_prog : Res_ir.Prog.t; t_dump : Res_vm.Coredump.t }

(** WER-style key: crash-kind family plus the full crash stack. *)
let wer_key (dump : Res_vm.Coredump.t) =
  let stack = Res_vm.Coredump.crash_stack dump in
  let family =
    Res_vm.Crash.kind_family dump.Res_vm.Coredump.crash.Res_vm.Crash.kind
  in
  Fmt.str "%s|%a" family
    Fmt.(
      list ~sep:(any ";") (fun ppf (f, b, i) -> Fmt.pf ppf "%s:%s:%d" f b i))
    stack

(** Developer annotations (paper §3.1): "once developers find the root
    cause of a failure, they can write RES annotations for the particular
    root cause, which would help RES triage other bug reports into the
    same bucket."  An annotation overrides the automatic signature when its
    predicate recognizes the classified cause. *)
type annotation = {
  a_bucket : string;  (** bucket name, e.g. an issue-tracker id *)
  a_matches : Res_core.Rootcause.t -> Res_vm.Coredump.t -> bool;
}

(** Annotation matching causes whose signature has the given prefix —
    the common "this family of failures is issue X" rule. *)
let annotate_signature_prefix ~bucket ~prefix =
  {
    a_bucket = bucket;
    a_matches =
      (fun cause _dump ->
        let s = Res_core.Rootcause.signature cause in
        String.length s >= String.length prefix
        && String.equal (String.sub s 0 (String.length prefix)) prefix);
  }

(** RES key: root-cause signature of the best reproduced suffix (or a
    matching developer annotation's bucket); falls back to the WER key when
    synthesis fails (graceful degradation). *)
let res_key ?(config = Res_core.Res.default_config) ?(annotations = [])
    (r : report) =
  let ctx = Res_core.Backstep.make_ctx r.t_prog in
  let analysis = Res_core.Res.analysis (Res_core.Res.analyze ~config ctx r.t_dump) in
  match Res_core.Res.best_cause analysis with
  | Some cause -> (
      match
        List.find_opt (fun a -> a.a_matches cause r.t_dump) annotations
      with
      | Some a -> a.a_bucket
      | None -> Res_core.Rootcause.signature cause)
  | None -> wer_key r.t_dump

(** Everything batch triage records about one dump: how far the analysis
    got, where the dump buckets, and the classified cause (empty when RES
    fell back to the WER key).  The work counters ride along so a batch
    coordinator can aggregate stats across workers. *)
type triaged = {
  tr_outcome : string;  (** {!Res_core.Res.outcome_name}: complete/partial/failed *)
  tr_timeout : bool;  (** the analysis burned its whole budget *)
  tr_bucket : string;  (** root-cause signature, annotation bucket, or WER fallback *)
  tr_cause : string;  (** rendered root cause; empty when none reproduced *)
  tr_nodes : int;
  tr_pruned : int;
}

(** Analyze one (program, dump) pair for batch triage: like {!res_key} but
    returning the full {!triaged} record instead of just the key — the
    per-dump unit of work `res triage --dir` farms to its pool.  Never
    raises: an analysis that dies internally degrades to a [failed] row in
    the WER bucket. *)
let triage_one ?(config = Res_core.Res.default_config) ?(annotations = [])
    ?budget prog dump =
  let ctx = Res_core.Backstep.make_ctx prog in
  let outcome = Res_core.Res.analyze ~config ?budget ctx dump in
  let analysis = Res_core.Res.analysis outcome in
  let bucket, cause =
    match Res_core.Res.best_cause analysis with
    | Some cause -> (
        let sig_ = Res_core.Rootcause.signature cause in
        match List.find_opt (fun a -> a.a_matches cause dump) annotations with
        | Some a -> (a.a_bucket, sig_)
        | None -> (sig_, sig_))
    | None -> (wer_key dump, "")
  in
  {
    tr_outcome = Res_core.Res.outcome_name outcome;
    tr_timeout = Res_core.Res.is_budget_partial outcome;
    tr_bucket = bucket;
    tr_cause = cause;
    tr_nodes = analysis.Res_core.Res.nodes_expanded;
    tr_pruned = analysis.Res_core.Res.nodes_pruned;
  }

(** Group reports by a key function. *)
let bucket ~key reports =
  List.fold_left
    (fun m r ->
      let k = key r in
      SMap.update k
        (function Some l -> Some (r :: l) | None -> Some [ r ])
        m)
    SMap.empty reports
  |> SMap.bindings
  |> List.map (fun (k, l) -> (k, List.rev l))

(** Clustering quality against ground-truth labels.

    [misbucketed] is the fraction of reports that do not sit in the bucket
    "owned" by their bug (each bug owns the bucket holding most of its
    reports; a bucket can be owned by one bug only — greedy assignment by
    bucket size).  [pairwise_*] are the standard same-bucket pair metrics. *)
type quality = {
  n_reports : int;
  n_buckets : int;
  n_bugs : int;
  misbucketed : float;
  pairwise_precision : float;
  pairwise_recall : float;
  pairwise_f1 : float;
}

let quality ~truth ~buckets reports =
  let n = List.length reports in
  let truth_of = truth in
  (* pairwise counts *)
  let bucket_of =
    List.concat_map (fun (k, rs) -> List.map (fun r -> (r, k)) rs) buckets
  in
  let key_of r = List.assq r bucket_of in
  let pairs l =
    let rec go = function
      | [] -> []
      | x :: rest -> List.map (fun y -> (x, y)) rest @ go rest
    in
    go l
  in
  let all_pairs = pairs reports in
  let same_bucket (a, b) = String.equal (key_of a) (key_of b) in
  let same_bug (a, b) = String.equal (truth_of a) (truth_of b) in
  let count p = List.length (List.filter p all_pairs) in
  let tp = count (fun pr -> same_bucket pr && same_bug pr) in
  let fp = count (fun pr -> same_bucket pr && not (same_bug pr)) in
  let fn = count (fun pr -> (not (same_bucket pr)) && same_bug pr) in
  let ratio a b = if a + b = 0 then 1.0 else float_of_int a /. float_of_int (a + b) in
  let precision = ratio tp fp and recall = ratio tp fn in
  let f1 =
    if precision +. recall = 0. then 0.
    else 2. *. precision *. recall /. (precision +. recall)
  in
  (* greedy bucket ownership *)
  let by_size =
    List.sort (fun (_, a) (_, b) -> compare (List.length b) (List.length a)) buckets
  in
  let owned = Hashtbl.create 8 in
  List.iter
    (fun (_, rs) ->
      let majority =
        List.fold_left
          (fun acc r ->
            let t = truth_of r in
            SMap.update t
              (function Some c -> Some (c + 1) | None -> Some 1)
              acc)
          SMap.empty rs
        |> SMap.bindings
        |> List.sort (fun (_, a) (_, b) -> compare b a)
      in
      match majority with
      | (bug, _) :: _ when not (Hashtbl.mem owned bug) ->
          Hashtbl.replace owned bug rs
      | _ -> ())
    by_size;
  let well_placed =
    Hashtbl.fold
      (fun bug rs acc ->
        acc + List.length (List.filter (fun r -> String.equal (truth_of r) bug) rs))
      owned 0
  in
  let bugs = List.sort_uniq compare (List.map truth_of reports) in
  {
    n_reports = n;
    n_buckets = List.length buckets;
    n_bugs = List.length bugs;
    misbucketed =
      (if n = 0 then 0. else float_of_int (n - well_placed) /. float_of_int n);
    pairwise_precision = precision;
    pairwise_recall = recall;
    pairwise_f1 = f1;
  }

let pp_quality ppf q =
  Fmt.pf ppf
    "reports=%d buckets=%d bugs=%d misbucketed=%.1f%% precision=%.2f \
     recall=%.2f f1=%.2f"
    q.n_reports q.n_buckets q.n_bugs (100. *. q.misbucketed)
    q.pairwise_precision q.pairwise_recall q.pairwise_f1
