(** Forward symbolic execution of one basic block (with calls inlined).

    This is the dynamic half of RES's per-block alternation (paper §2.3):
    given a candidate predecessor block and a lazily-symbolic pre-state, it
    executes the block forward, journaling reads, writes, inputs, and path
    constraints, so the backward stepper can check compatibility with the
    post-state snapshot.  The same engine drives the forward execution
    synthesis baseline.

    Mid-block [call]s are {e re-executed forward} (inlined, forking on
    symbolic branches) rather than reverse-analyzed — the paper's §6
    strategy for hard-to-invert constructs. *)

module IMap = Map.Make (Int)
module ISet = Set.Make (Int)
open Res_solver

type config = {
  max_steps : int;  (** fuel across all forks of one request *)
  max_outcomes : int;  (** cap on feasible outcomes returned *)
  max_addr_candidates : int;  (** fork bound for ambiguous addresses *)
  inline_calls : bool;
      (** forward re-execution of mid-block calls (paper §6); disabling it
          models a reverse-only analyzer that cannot cross hard constructs *)
  interrupt : unit -> bool;
      (** cooperative interrupt, polled once per interpreted instruction:
          when it returns [true] the remaining forks are abandoned and the
          request finishes with whatever outcomes it already has *)
  solver : Solver.config;
}

let default_config =
  {
    max_steps = 4000;
    max_outcomes = 8;
    max_addr_candidates = 4;
    inline_calls = true;
    interrupt = (fun () -> false);
    solver = Solver.default_config;
  }

(** How the bottom-frame block execution is allowed to end. *)
type mode =
  | Full of { require_target : Res_ir.Instr.label option }
      (** run through the terminator; if a target is given, the branch must
          go there *)
  | Partial of {
      stack : (string * Res_ir.Instr.label * int) list;
          (** where execution stops: the coredump's frame positions,
              outermost (root) frame first — the crash may sit inside an
              inlined callee *)
      crash : Res_vm.Crash.kind option;
          (** faulting behaviour of the instruction at the stop point *)
    }

type stop =
  | Fell_to of Res_ir.Instr.label
  | Returned of Expr.t option
  | Halted
  | Crashed_here

(** Journal of one completed execution path. *)
type outcome = {
  stop : stop;
  frames : Symframe.t list;  (** frame stack at the stop point *)
  mem : Symmem.t;
  heap : Res_mem.Heap.t;
  path : Expr.t list;  (** path constraints accumulated, newest first *)
  pre_regs : (Res_ir.Instr.reg * Expr.sym) list;
      (** pre-state symbols minted for bottom-frame registers *)
  inputs : (Res_ir.Instr.input_kind * Expr.sym) list;  (** consumption order *)
  allocs : (int * Expr.t) list;  (** (base, size expr), oldest first *)
  frees : int list;
  lock_ops : (bool * int) list;  (** (true=lock, addr), oldest first *)
  logs : (string * Expr.t) list;
  spawns : (int * string * Expr.t list) list;
      (** (tid created, function, argument exprs) *)
  joins : int list;  (** tids joined, oldest first *)
  read_before_write : ISet.t;  (** addrs whose first access was a read *)
  steps : int;
}

type request = {
  prog : Res_ir.Prog.t;
  layout : Res_mem.Layout.t;
  tid : int;
  frame : Symframe.t;  (** seeded bottom frame, positioned at block start *)
  heap : Res_mem.Heap.t;  (** heap state at block entry *)
  post_mem : int -> Expr.t;
      (** optimistic read of an address never touched by this block *)
  havoc_reads : ISet.t;
      (** addresses whose first read must mint a fresh symbol instead of
          trusting [post_mem] (they are overwritten later in the block) *)
  ambient : Expr.t list;  (** suffix constraints, used for concretization *)
  addr_pool : int list;
      (** plausible concrete addresses (mapped words, recently-touched
          first) used when an address expression is unconstrained — e.g. a
          pointer register havocked by the backward walk *)
  alloc_plan : (int * int) list;
      (** (base, size) for each [alloc] the block performs, in order, taken
          from the post-state heap's allocation record *)
  spawn_plan : int list;
      (** tids for each [spawn] the block performs, in order — the identities
          of snapshot threads whose birth lies in this block *)
  dynamic_alloc : bool;
      (** forward-synthesis mode: when the alloc plan is exhausted, allocate
          at the bump pointer with a solver-concretized size instead of
          rejecting (backward mode wants the reject) *)
  mode : mode;
}

(* --- internal search state (one fork) --- *)

type st = {
  frames : Symframe.t list;
  mem : Symmem.t;
  heap : Res_mem.Heap.t;
  path : Expr.t list;
  pre_regs : (Res_ir.Instr.reg * Expr.sym) list;
  inputs_rev : (Res_ir.Instr.input_kind * Expr.sym) list;
  allocs_rev : (int * Expr.t) list;
  frees_rev : int list;
  locks_rev : (bool * int) list;
  logs_rev : (string * Expr.t) list;
  rbw : ISet.t;
  plan : (int * int) list;
  sp_plan : int list;
  spawns_rev : (int * string * Expr.t list) list;
  joins_rev : int list;
  steps : int;
}

exception Reject of string

let init_st (rq : request) =
  {
    frames = [ rq.frame ];
    mem = Symmem.empty;
    heap = rq.heap;
    path = [];
    pre_regs = [];
    inputs_rev = [];
    allocs_rev = [];
    frees_rev = [];
    locks_rev = [];
    logs_rev = [];
    rbw = ISet.empty;
    plan = rq.alloc_plan;
    sp_plan = rq.spawn_plan;
    spawns_rev = [];
    joins_rev = [];
    steps = 0;
  }

let finish (st : st) stop =
  {
    stop;
    frames = st.frames;
    mem = st.mem;
    heap = st.heap;
    path = st.path;
    pre_regs = List.rev st.pre_regs;
    inputs = List.rev st.inputs_rev;
    allocs = List.rev st.allocs_rev;
    frees = List.rev st.frees_rev;
    lock_ops = List.rev st.locks_rev;
    logs = List.rev st.logs_rev;
    spawns = List.rev st.spawns_rev;
    joins = List.rev st.joins_rev;
    read_before_write = st.rbw;
    steps = st.steps;
  }

let top st = List.hd st.frames

let with_top st fr =
  match st.frames with
  | _ :: rest -> { st with frames = fr :: rest }
  | [] -> assert false

let is_bottom st = match st.frames with [ _ ] -> true | _ -> false

(** Read register [r] of the top frame.  In the lazy bottom frame an unset
    register stands for unknown pre-block state and mints a fresh symbol;
    in callee frames it is a zero-initialized register. *)
let read_reg st r =
  let fr = top st in
  match Symframe.read_opt fr r with
  | Some e -> (e, st)
  | None ->
      if fr.Symframe.lazy_pre then (
        let s = Expr.fresh_sym (Fmt.str "pre:r%d" r) in
        let st = with_top st (Symframe.write fr r (Expr.Sym s)) in
        (Expr.Sym s, { st with pre_regs = (r, s) :: st.pre_regs }))
      else (Expr.zero, st)

let write_reg st r e = with_top st (Symframe.write (top st) r e)

(** Read memory, routing through the pre-symbol machinery. *)
let read_mem (rq : request) st addr =
  if Symmem.was_written st.mem addr then
    let e, mem = Symmem.read st.mem addr in
    (e, { st with mem })
  else
    let st = { st with rbw = ISet.add addr st.rbw } in
    if ISet.mem addr rq.havoc_reads then
      let e, mem = Symmem.read st.mem addr in
      (e, { st with mem })
    else (rq.post_mem addr, st)

let write_mem st addr e = { st with mem = Symmem.write st.mem addr e }

(** Whether a concrete address is mapped (globals word or live heap word) —
    unmapped addresses cannot be accessed on a non-crashing path. *)
let is_mapped (rq : request) st addr =
  if Res_mem.Layout.in_heap_region addr then
    match Res_mem.Heap.check_access st.heap addr with
    | Res_mem.Heap.Ok_access _ -> true
    | _ -> false
  else Res_mem.Layout.find_global rq.layout addr <> None

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(** Resolve an address expression to concrete, {e mapped} candidates.
    A concrete expression resolves immediately.  A meaningfully-constrained
    one is enumerated via the solver.  An unconstrained one (the solver's
    enumeration hits its cap, or comes back unknown) falls back to the
    address pool: plausible mapped words, recently-touched first, filtered
    for feasibility.  Raises {!Reject} when nothing mapped is feasible. *)
let concretize_addr cfg (rq : request) st e =
  let e = Simplify.norm e in
  match Expr.const_val e with
  | Some v ->
      if is_mapped rq st v then [ (v, st) ]
      else raise (Reject (Fmt.str "access to unmapped 0x%x" v))
  | None -> (
      let constraints = st.path @ rq.ambient in
      let with_binding v = (v, { st with path = Expr.eq e (Expr.const v) :: st.path }) in
      let from_pool () =
        let feasible =
          List.filter
            (fun a ->
              is_mapped rq st a
              && Solver.is_sat ~config:cfg.solver
                   (Expr.eq e (Expr.const a) :: constraints))
            rq.addr_pool
        in
        List.map with_binding (take cfg.max_addr_candidates feasible)
      in
      let result =
        match
          Solver.concretize ~config:cfg.solver ~constraints
            ~max_candidates:cfg.max_addr_candidates e
        with
        | Ok [] -> []
        | Ok vs when List.length vs < cfg.max_addr_candidates ->
            (* genuinely constrained: keep the mapped ones *)
            List.filter_map
              (fun v -> if is_mapped rq st v then Some (with_binding v) else None)
              vs
        | Ok vs -> (
            (* enumeration hit the cap: likely unconstrained *)
            match from_pool () with
            | [] ->
                List.filter_map
                  (fun v -> if is_mapped rq st v then Some (with_binding v) else None)
                  vs
            | pool -> pool)
        | Error `Unknown -> from_pool ()
      in
      match result with
      | [] -> raise (Reject "no feasible mapped address")
      | _ -> result)

(* --- crash-site constraints --- *)

(** The constraint that the instruction at the crash site faults in the
    recorded way, given the current state.  Returns the constraint list
    and the state (register reads may mint pre symbols). *)
let crash_constraints (rq : request) st (kind : Res_vm.Crash.kind option) =
  let fr = top st in
  let block = Res_ir.Prog.block rq.prog ~func:fr.Symframe.func ~label:fr.Symframe.block in
  match kind with
  | None -> ([], st)
  | Some kind -> (
      let instr_opt =
        if fr.Symframe.idx < Res_ir.Block.length block then
          Some (Res_ir.Block.instr block fr.Symframe.idx)
        else None
      in
      let addr_of_access st =
        match instr_opt with
        | Some (Res_ir.Instr.Load (_, a, off)) | Some (Res_ir.Instr.Store (a, off, _)) ->
            let e, st = read_reg st a in
            (Some (Simplify.norm (Expr.add e (Expr.const off))), st)
        | Some (Res_ir.Instr.Free a) | Some (Res_ir.Instr.Lock a) ->
            let e, st = read_reg st a in
            (Some (Simplify.norm e), st)
        | _ -> (None, st)
      in
      match kind with
      | Res_vm.Crash.Assert_fail _ -> (
          match instr_opt with
          | Some (Res_ir.Instr.Assert (r, _)) ->
              let v, st = read_reg st r in
              ([ Expr.eq v Expr.zero ], st)
          | _ -> raise (Reject "crash pc is not an assert"))
      | Res_vm.Crash.Div_by_zero -> (
          match instr_opt with
          | Some (Res_ir.Instr.Binop ((Res_ir.Instr.Div | Res_ir.Instr.Rem), _, _, b)) ->
              let v, st = read_reg st b in
              ([ Expr.eq v Expr.zero ], st)
          | _ -> raise (Reject "crash pc is not a division"))
      | Res_vm.Crash.Seg_fault a
      | Res_vm.Crash.Out_of_bounds { addr = a; _ }
      | Res_vm.Crash.Use_after_free { addr = a; _ }
      | Res_vm.Crash.Global_overflow { addr = a; _ } -> (
          match addr_of_access st with
          | Some e, st -> ([ Expr.eq e (Expr.const a) ], st)
          | None, _ -> raise (Reject "crash pc is not a memory access"))
      | Res_vm.Crash.Double_free a | Res_vm.Crash.Invalid_free a -> (
          match instr_opt with
          | Some (Res_ir.Instr.Free r) ->
              let v, st = read_reg st r in
              ([ Expr.eq v (Expr.const a) ], st)
          | _ -> raise (Reject (Fmt.str "crash pc is not a free of 0x%x" a)))
      | Res_vm.Crash.Alloc_error n -> (
          match instr_opt with
          | Some (Res_ir.Instr.Alloc (_, s)) ->
              let v, st = read_reg st s in
              ([ Expr.eq v (Expr.const n) ], st)
          | _ -> raise (Reject "crash pc is not an alloc"))
      | Res_vm.Crash.Unlock_error a -> (
          match instr_opt with
          | Some (Res_ir.Instr.Unlock r) ->
              let v, st = read_reg st r in
              let cell, st = read_mem rq st a in
              ( [ Expr.eq v (Expr.const a); Expr.ne cell (Expr.const (rq.tid + 1)) ],
                st )
          | _ -> raise (Reject "crash pc is not an unlock"))
      | Res_vm.Crash.Abort_called _ -> (
          (* the terminator aborts; nothing more to constrain *)
          match instr_opt with
          | None -> ([], st)
          | Some _ -> raise (Reject "abort crash must sit on the terminator"))
      | Res_vm.Crash.Deadlock _ -> (
          (* this thread is parked on a lock whose cell is non-zero *)
          match instr_opt with
          | Some (Res_ir.Instr.Lock r) -> (
              let v, st = read_reg st r in
              match Expr.const_val (Simplify.norm v) with
              | Some a ->
                  let cell, st = read_mem rq st a in
                  ([ Expr.ne cell Expr.zero ], st)
              | None -> raise (Reject "deadlock lock address not concrete"))
          | _ -> raise (Reject "deadlocked thread is not at a lock")))

(* --- the interpreter --- *)

type pending =
  | P_state of st
  | P_done of outcome

let exec (cfg : config) (rq : request) : outcome list * string list =
  let rejects = ref [] in
  let outcomes = ref [] in
  let total_steps = ref 0 in
  let push_reject msg = rejects := msg :: !rejects in
  (* Worklist DFS over forked states. *)
  let rec drive (stack : st list) =
    match stack with
    | [] -> ()
    | st :: rest ->
        if List.length !outcomes >= cfg.max_outcomes then ()
        else if cfg.interrupt () then push_reject "interrupted: budget exhausted"
        else if !total_steps > cfg.max_steps then push_reject "fuel exhausted"
        else begin
          match step st with
          | exception Reject msg ->
              push_reject msg;
              drive rest
          | nexts ->
              let done_, live =
                List.partition_map
                  (function P_done o -> Left o | P_state s -> Right s)
                  nexts
              in
              outcomes := !outcomes @ done_;
              drive (live @ rest)
        end
  (* One instruction (or terminator) of the top frame. *)
  and step (st : st) : pending list =
    incr total_steps;
    let st = { st with steps = st.steps + 1 } in
    let fr = top st in
    let block =
      Res_ir.Prog.block rq.prog ~func:fr.Symframe.func ~label:fr.Symframe.block
    in
    (* Partial mode: stop when the whole frame stack matches the coredump's
       positions (root frame first). *)
    let stack_matches spec =
      let sig_of (f : Symframe.t) = (f.Symframe.func, f.Symframe.block, f.Symframe.idx) in
      let current = List.rev_map sig_of st.frames in
      List.length current = List.length spec
      && List.for_all2
           (fun (f1, b1, i1) (f2, b2, i2) ->
             String.equal f1 f2 && String.equal b1 b2 && i1 = i2)
           current spec
    in
    let stopped =
      match rq.mode with
      | Partial { stack; crash } when stack_matches stack -> (
          match crash_constraints rq st crash with
          | cs, st' ->
              Some (P_done (finish { st' with path = cs @ st'.path } Crashed_here))
          | exception Reject _ -> None)
      | _ -> None
    in
    let continue_steps () =
      if fr.Symframe.idx < Res_ir.Block.length block then
        step_instr st fr (Res_ir.Block.instr block fr.Symframe.idx)
      else step_term st fr block.Res_ir.Block.term
    in
    match stopped with
    | Some done_ ->
        (* The stop position could in principle recur (loops), but the
           first match is canonically the shortest suffix; take it. *)
        [ done_ ]
    | None -> continue_steps ()
  and step_instr st _fr instr =
    let open Res_ir.Instr in
    let advance st = with_top st (Symframe.advance (top st)) in
    match instr with
    | Const (r, n) -> [ P_state (advance (write_reg st r (Expr.const n))) ]
    | Mov (r, a) ->
        let v, st = read_reg st a in
        [ P_state (advance (write_reg st r v)) ]
    | Binop (op, r, a, b) ->
        let va, st = read_reg st a in
        let vb, st = read_reg st b in
        let st =
          (* surviving a division means the divisor was nonzero *)
          if op = Div || op = Rem then { st with path = Expr.ne vb Expr.zero :: st.path }
          else st
        in
        let v = Simplify.norm (Expr.Binop (op, va, vb)) in
        [ P_state (advance (write_reg st r v)) ]
    | Unop (op, r, a) ->
        let v, st = read_reg st a in
        [ P_state (advance (write_reg st r (Simplify.norm (Expr.Unop (op, v))))) ]
    | Load (r, a, off) ->
        let base, st = read_reg st a in
        let addr_e = Simplify.norm (Expr.add base (Expr.const off)) in
        concretize_addr cfg rq st addr_e
        |> List.map (fun (addr, st) ->
               let v, st = read_mem rq st addr in
               P_state (advance (write_reg st r v)))
    | Store (a, off, s) ->
        let base, st = read_reg st a in
        let v, st = read_reg st s in
        let addr_e = Simplify.norm (Expr.add base (Expr.const off)) in
        concretize_addr cfg rq st addr_e
        |> List.map (fun (addr, st) ->
               P_state (advance (write_mem st addr v)))
    | Global_addr (r, g) -> (
        match Res_mem.Layout.global_base rq.layout g with
        | base -> [ P_state (advance (write_reg st r (Expr.const base))) ]
        | exception Not_found -> raise (Reject (Fmt.str "unknown global %s" g)))
    | Alloc (r, s) -> (
        let size_e, st = read_reg st s in
        match st.plan with
        | [] when rq.dynamic_alloc -> (
            (* Forward mode: concretize the size and bump-allocate. *)
            let size =
              match Expr.const_val (Simplify.norm size_e) with
              | Some v -> Some v
              | None ->
                  Solver.unique_value ~config:cfg.solver
                    ~constraints:(st.path @ rq.ambient) size_e
            in
            match size with
            | Some size when size > 0 ->
                let heap, base = Res_mem.Heap.alloc st.heap ~size ~site:None in
                let st =
                  {
                    st with
                    heap;
                    allocs_rev = (base, size_e) :: st.allocs_rev;
                    path = Expr.eq size_e (Expr.const size) :: st.path;
                  }
                in
                [ P_state (advance (write_reg st r (Expr.const base))) ]
            | _ -> raise (Reject "dynamic allocation size not concretizable"))
        | [] -> raise (Reject "allocation without a planned base")
        | (base, size) :: plan ->
            (* Replay the recorded allocation: the bump allocator must hand
               out exactly the planned base, and the dynamic size must
               match the recorded one. *)
            let heap, got = Res_mem.Heap.alloc st.heap ~size ~site:None in
            if got <> base then
              raise (Reject (Fmt.str "alloc returned 0x%x, plan says 0x%x" got base));
            let st =
              {
                st with
                heap;
                plan;
                allocs_rev = (base, size_e) :: st.allocs_rev;
                path = Expr.eq size_e (Expr.const size) :: st.path;
              }
            in
            [ P_state (advance (write_reg st r (Expr.const base))) ])
    | Free a -> (
        let v, st = read_reg st a in
        let candidates =
          concretize_addr cfg rq st (Simplify.norm v)
          |> List.filter_map (fun (base, st) ->
                 match
                   Res_mem.Heap.free st.heap base ~site:(Symframe.pc (top st))
                 with
                 | Res_mem.Heap.Freed_ok (heap, _) ->
                     Some
                       (P_state
                          (with_top
                             { st with heap; frees_rev = base :: st.frees_rev }
                             (Symframe.advance (top st))))
                 | Res_mem.Heap.Double_free _ | Res_mem.Heap.Invalid_free -> None)
        in
        match candidates with
        | [] -> raise (Reject "free of non-live block on non-crashing path")
        | _ -> candidates)
    | Input (r, kind) ->
        let s = Expr.fresh_sym (Fmt.str "input:%s" (input_kind_name kind)) in
        let st = { st with inputs_rev = (kind, s) :: st.inputs_rev } in
        [ P_state (advance (write_reg st r (Expr.Sym s))) ]
    | Lock a ->
        let v, st = read_reg st a in
        concretize_addr cfg rq st (Simplify.norm v)
        |> List.map (fun (addr, st) ->
               let cell, st = read_mem rq st addr in
               let st =
                 { st with path = Expr.eq cell Expr.zero :: st.path;
                   locks_rev = (true, addr) :: st.locks_rev }
               in
               P_state (advance (write_mem st addr (Expr.const (rq.tid + 1)))))
    | Unlock a ->
        let v, st = read_reg st a in
        concretize_addr cfg rq st (Simplify.norm v)
        |> List.map (fun (addr, st) ->
               let cell, st = read_mem rq st addr in
               let st =
                 {
                   st with
                   path = Expr.eq cell (Expr.const (rq.tid + 1)) :: st.path;
                   locks_rev = (false, addr) :: st.locks_rev;
                 }
               in
               P_state (advance (write_mem st addr Expr.zero)))
    | Spawn (r, fname, args) -> (
        match st.sp_plan with
        | [] -> raise (Reject "spawn without a planned tid")
        | tid :: sp_plan ->
            let arg_vals, st =
              List.fold_left
                (fun (acc, st) a ->
                  let v, st = read_reg st a in
                  (v :: acc, st))
                ([], st) args
            in
            let st =
              { st with sp_plan; spawns_rev = (tid, fname, List.rev arg_vals) :: st.spawns_rev }
            in
            [ P_state (advance (write_reg st r (Expr.const tid))) ])
    | Join a -> (
        (* join implies the target halted before this point; the backward
           search checks that against the snapshot's thread statuses *)
        let v, st = read_reg st a in
        match Expr.const_val (Simplify.norm v) with
        | Some tid -> [ P_state (advance { st with joins_rev = tid :: st.joins_rev }) ]
        | None -> raise (Reject "join target is not concrete"))
    | Call (ret_reg, fname, args) ->
        if not cfg.inline_calls then
          raise (Reject "mid-block call (forward re-execution disabled)");
        let f = Res_ir.Prog.func rq.prog fname in
        let arg_vals, st =
          List.fold_left
            (fun (acc, st) a ->
              let v, st = read_reg st a in
              (v :: acc, st))
            ([], st) args
        in
        let callee = Symframe.enter f ~args:(List.rev arg_vals) ~ret_reg in
        let st = with_top st (Symframe.advance (top st)) in
        [ P_state { st with frames = callee :: st.frames } ]
    | Assert (r, _) ->
        (* a surviving assert is a path constraint *)
        let v, st = read_reg st r in
        [ P_state (advance { st with path = Expr.ne v Expr.zero :: st.path }) ]
    | Log (tag, r) ->
        let v, st = read_reg st r in
        [ P_state (advance { st with logs_rev = (tag, v) :: st.logs_rev }) ]
    | Nop -> [ P_state (advance st) ]
  and step_term st _fr term =
    let open Res_ir.Instr in
    let at_bottom = is_bottom st in
    let goto st label = with_top st (Symframe.goto (top st) label) in
    let end_bottom st label =
      match rq.mode with
      | Full { require_target = Some t } ->
          if String.equal t label then
            [ P_done (finish (goto st label) (Fell_to label)) ]
          else begin
            (* wrong successor: feasible only if the branch could not go
               there, i.e. this fork dies *)
            raise (Reject (Fmt.str "branch goes to %s, needed %s" label t))
          end
      | Full { require_target = None } ->
          [ P_done (finish (goto st label) (Fell_to label)) ]
      | Partial _ -> raise (Reject "partial execution reached the terminator")
    in
    match term with
    | Jmp l -> if at_bottom then end_bottom st l else [ P_state (goto st l) ]
    | Br (r, l1, l2) -> (
        let v, st = read_reg st r in
        let v = Simplify.norm v in
        match Expr.const_val v with
        | Some c ->
            let l = if c <> 0 then l1 else l2 in
            if at_bottom then end_bottom st l else [ P_state (goto st l) ]
        | None ->
            let taken = { st with path = Expr.ne v Expr.zero :: st.path } in
            let fallth = { st with path = Expr.eq v Expr.zero :: st.path } in
            let feasible st' =
              Solver.solve ~config:cfg.solver (st'.path @ rq.ambient)
              <> Solver.Unsat
            in
            let branches =
              (if feasible taken then [ (taken, l1) ] else [])
              @ if feasible fallth then [ (fallth, l2) ] else []
            in
            if branches = [] then raise (Reject "both branch directions unsat");
            let results =
              List.concat_map
                (fun (st', l) ->
                  if at_bottom then
                    match end_bottom st' l with
                    | outs -> outs
                    | exception Reject _ -> []
                  else [ P_state (goto st' l) ])
                branches
            in
            if results = [] then
              raise (Reject "no feasible branch reaches the required successor");
            results)
    | Ret r_opt -> (
        let ret_val, st =
          match r_opt with
          | Some r ->
              let v, st = read_reg st r in
              (Some v, st)
          | None -> (None, st)
        in
        if at_bottom then
          match rq.mode with
          | Full { require_target = None } ->
              [ P_done (finish st (Returned ret_val)) ]
          | Full { require_target = Some _ } ->
              raise (Reject "block returns, successor required")
          | Partial _ -> raise (Reject "partial execution reached ret")
        else
          let callee = top st in
          let st = { st with frames = List.tl st.frames } in
          let st =
            match (callee.Symframe.ret_reg, ret_val) with
            | Some dst, Some v -> write_reg st dst v
            | Some dst, None -> write_reg st dst Expr.zero
            | None, _ -> st
          in
          [ P_state st ])
    | Halt ->
        if at_bottom then
          match rq.mode with
          | Full { require_target = None } -> [ P_done (finish st Halted) ]
          | _ -> raise (Reject "block halts, successor required")
        else raise (Reject "halt inside an inlined call")
    | Abort _ -> raise (Reject "abort on a non-crashing path")
  in
  drive [ init_st rq ];
  (!outcomes, List.rev !rejects)

(** Run a request to completion.  Returns the feasible outcomes (possibly
    none) and human-readable reasons for rejected forks. *)
let run ?(config = default_config) rq = exec config rq
