(* End-to-end integration tests: every workload through the full pipeline
   (run → crash → coredump → synthesize → replay → classify), checked
   against ground truth — the paper's §4 evaluation generalized from 3 to
   13 bugs, plus cross-cutting invariants. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let analyze w =
  let dump = Res_workloads.Truth.coredump w in
  let ctx = Res_core.Backstep.make_ctx w.Res_workloads.Truth.w_prog in
  let config =
    {
      Res_core.Res.default_config with
      search =
        {
          Res_core.Search.default_config with
          max_segments = 8;
          max_nodes = 30_000;
        };
    }
  in
  (dump, ctx, Res_core.Res.analysis (Res_core.Res.analyze ~config ctx dump))

(* one test per workload: correct root cause, exact deterministic replay *)
let pipeline_cases =
  List.map
    (fun w ->
      Alcotest.test_case w.Res_workloads.Truth.w_name `Slow (fun () ->
          let _dump, _ctx, analysis = analyze w in
          check bool_t "at least one reproduced suffix" true
            (analysis.Res_core.Res.reports <> []);
          (match Res_core.Res.best_cause analysis with
          | Some cause ->
              check bool_t
                (Fmt.str "cause %s matches ground truth %s"
                   (Res_core.Rootcause.signature cause)
                   (Res_workloads.Truth.bug_class_name
                      w.Res_workloads.Truth.w_bug))
                true
                (Res_workloads.Truth.matches w.Res_workloads.Truth.w_bug cause)
          | None -> Alcotest.fail "no root cause");
          (* requirement (5): deterministic replay *)
          let top = List.hd analysis.Res_core.Res.reports in
          check bool_t "suffix replays deterministically" true
            top.Res_core.Res.deterministic;
          check bool_t "replay is byte-exact" true
            top.Res_core.Res.verdict.Res_core.Replay.reproduced))
    Res_workloads.Workloads.all

(* §4: "in all the cases RES was able to identify the correct root cause
   in less than 1 minute" — here: all three concurrency bugs, timed. *)
let test_concurrency_bugs_under_a_minute () =
  let bugs =
    [
      Res_workloads.Counter_race.workload;
      Res_workloads.Workloads.find "lock-order-deadlock";
      Res_workloads.Corpus.same_stack_race |> fun prog ->
      {
        Res_workloads.Truth.w_name = "balance-race";
        w_prog = prog;
        w_bug = Res_workloads.Truth.B_data_race;
        w_crash_config =
          (fun () ->
            {
              (Res_vm.Exec.default_config ()) with
              sched =
                Res_vm.Sched.create (Res_vm.Sched.Fixed [ 0; 1; 2; 1; 2; 0; 0 ]);
            });
        w_description = "";
      };
    ]
  in
  List.iter
    (fun w ->
      let _, _, analysis = analyze w in
      check bool_t
        (Fmt.str "%s under 60s (took %.2fs)" w.Res_workloads.Truth.w_name
           analysis.Res_core.Res.cpu_seconds)
        true
        (analysis.Res_core.Res.cpu_seconds < 60.0);
      match Res_core.Res.best_cause analysis with
      | Some cause ->
          check bool_t "concurrency root cause" true
            (Res_workloads.Truth.matches w.Res_workloads.Truth.w_bug cause)
      | None -> Alcotest.fail "no cause")
    bugs

(* no false positives: reproduced suffixes never classify a clean
   (fully-locked) program's constructs as racy, because the control never
   crashes in the first place; additionally, the racy program's reproduced
   suffixes must name the real racy address only *)
let test_no_false_positive_addresses () =
  let w = Res_workloads.Counter_race.workload in
  let dump, _ctx, analysis = analyze w in
  let layout = Res_mem.Layout.of_prog w.Res_workloads.Truth.w_prog in
  let counter = Res_mem.Layout.global_base layout "counter" in
  ignore dump;
  List.iter
    (fun (r : Res_core.Res.report) ->
      match r.Res_core.Res.root_cause with
      | Some (Res_core.Rootcause.Data_race { addr; _ })
      | Some (Res_core.Rootcause.Atomicity_violation { addr; _ }) ->
          check int_t "racy address is the counter" counter addr
      | _ -> ())
    analysis.Res_core.Res.reports

(* the suffix RES hands the developer touches the relevant state (§3.3) *)
let test_write_read_sets_focus () =
  let w = Res_workloads.Counter_race.workload in
  let _dump, _ctx, analysis = analyze w in
  let layout = Res_mem.Layout.of_prog w.Res_workloads.Truth.w_prog in
  let counter = Res_mem.Layout.global_base layout "counter" in
  let top = List.hd analysis.Res_core.Res.reports in
  let touched =
    Res_core.Suffix.write_set top.Res_core.Res.suffix
    @ Res_core.Suffix.read_set top.Res_core.Res.suffix
  in
  check bool_t "counter in the suffix's read/write set" true
    (List.mem counter touched)

(* E7: the hash construct is crossed by forward re-execution; with
   inlining disabled the walk cannot pass the compute block *)
let test_hash_requires_forward_reexecution () =
  let w = Res_workloads.Hash_construct.workload in
  let dump = Res_workloads.Truth.coredump w in
  let depth_with inline_calls =
    let sym_config = { Res_symex.Symexec.default_config with inline_calls } in
    let ctx = Res_core.Backstep.make_ctx ~sym_config w.Res_workloads.Truth.w_prog in
    let result =
      Res_core.Search.search
        ~config:
          { Res_core.Search.default_config with max_segments = 8; max_suffixes = 4 }
        ctx dump
    in
    List.fold_left
      (fun acc s -> max acc (Res_core.Suffix.length s))
      0 result.Res_core.Search.suffixes
  in
  let with_inline = depth_with true and without = depth_with false in
  check bool_t
    (Fmt.str "inlining reaches deeper (%d > %d)" with_inline without)
    true (with_inline > without)

(* RES vs execution length: suffix synthesis cost is flat in the prefix
   length while the forward baseline's grows (the paper's core claim) *)
let test_res_flat_forward_growing () =
  let res_cost n =
    let w = Res_workloads.Long_exec.workload_n n in
    let dump = Res_workloads.Truth.coredump w in
    let ctx = Res_core.Backstep.make_ctx w.Res_workloads.Truth.w_prog in
    let result =
      Res_core.Search.search
        ~config:
          { Res_core.Search.default_config with max_segments = 3; max_suffixes = 1 }
        ctx dump
    in
    check bool_t (Fmt.str "RES finds a suffix at n=%d" n) true
      (result.Res_core.Search.suffixes <> []);
    result.Res_core.Search.stats.Res_core.Search.nodes
  in
  let fwd_cost n =
    let w = Res_workloads.Long_exec.workload_n n in
    let dump = Res_workloads.Truth.coredump w in
    let r =
      Res_baselines.Forward_synth.synthesize w.Res_workloads.Truth.w_prog dump
    in
    r.Res_baselines.Forward_synth.stats.Res_baselines.Forward_synth.segments_executed
  in
  let r10 = res_cost 10 and r200 = res_cost 200 in
  let f10 = fwd_cost 10 and f200 = fwd_cost 200 in
  check bool_t
    (Fmt.str "RES flat (%d vs %d nodes)" r10 r200)
    true
    (r200 <= r10 * 2);
  check bool_t
    (Fmt.str "forward grows (%d -> %d segments)" f10 f200)
    true
    (f200 > f10 * 5)

(* property: random straight-line programs (arithmetic + global stores +
   an input) that end in a crash must always admit a complete suffix whose
   replay is byte-exact — the reconstruction is sound on the whole
   fragment, not just on the hand-written workloads *)
let gen_random_crash_prog =
  let open QCheck2.Gen in
  let n_regs = 6 in
  let* instrs =
    let gen_instr =
      let* dst = int_range 0 (n_regs - 1) in
      let* choice = int_range 0 3 in
      match choice with
      | 0 ->
          let* v = int_range (-50) 50 in
          return (Res_ir.Instr.Const (dst, v))
      | 1 ->
          let* op =
            oneofl Res_ir.Instr.[ Add; Sub; Mul; And; Or; Xor ]
          in
          let* a = int_range 0 (n_regs - 1) in
          let* b = int_range 0 (n_regs - 1) in
          return (Res_ir.Instr.Binop (op, dst, a, b))
      | 2 ->
          let* a = int_range 0 (n_regs - 1) in
          return (Res_ir.Instr.Mov (dst, a))
      | _ ->
          let* a = int_range 0 (n_regs - 1) in
          return (Res_ir.Instr.Unop (Res_ir.Instr.Neg, dst, a))
    in
    let* n = int_range 2 8 in
    list_repeat n gen_instr
  in
  let* store_reg = int_range 0 (n_regs - 1) in
  let* input_value = int_range 0 100 in
  (* entry: random arithmetic; mid: store a result + read an input;
     fin: always-false assert -> crash *)
  let g_addr = 6 and g2_addr = 7 and zero = 8 in
  let entry =
    Res_ir.Block.v "entry" instrs (Res_ir.Instr.Jmp "mid")
  in
  let mid =
    Res_ir.Block.v "mid"
      [
        Res_ir.Instr.Global_addr (g_addr, "g");
        Res_ir.Instr.Store (g_addr, 0, store_reg);
        Res_ir.Instr.Input (g2_addr, Res_ir.Instr.Net);
        Res_ir.Instr.Global_addr (store_reg, "h");
        Res_ir.Instr.Store (store_reg, 0, g2_addr);
      ]
      (Res_ir.Instr.Jmp "fin")
  in
  let fin =
    Res_ir.Block.v "fin"
      [ Res_ir.Instr.Const (zero, 0); Res_ir.Instr.Assert (zero, "down") ]
      Res_ir.Instr.Halt
  in
  let prog =
    Res_ir.Prog.v
      ~globals:[ { Res_ir.Prog.gname = "g"; gsize = 1 }; { gname = "h"; gsize = 1 } ]
      [ Res_ir.Func.v ~name:"main" ~params:[] ~entry:"entry" [ entry; mid; fin ] ]
  in
  return (prog, input_value)

let prop_random_programs_reconstruct =
  QCheck2.Test.make ~name:"random crash programs reconstruct exactly" ~count:25
    gen_random_crash_prog (fun (prog, input_value) ->
      let config =
        {
          (Res_vm.Exec.default_config ()) with
          oracle = Res_vm.Oracle.scripted [ input_value ];
        }
      in
      match Res_vm.Exec.run_to_coredump ~config prog with
      | None, _ -> QCheck2.Test.fail_report "program did not crash"
      | Some dump, _ -> (
          let ctx = Res_core.Backstep.make_ctx prog in
          let result =
            Res_core.Search.search
              ~config:
                {
                  Res_core.Search.default_config with
                  max_segments = 4;
                  max_suffixes = 4;
                }
              ctx dump
          in
          match
            List.find_opt
              (fun s -> s.Res_core.Suffix.complete)
              result.Res_core.Search.suffixes
          with
          | None -> QCheck2.Test.fail_report "no complete suffix"
          | Some suffix ->
              let v = Res_core.Replay.replay ctx suffix dump in
              v.Res_core.Replay.reproduced))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_random_programs_reconstruct ]

let () =
  Alcotest.run "integration"
    [
      ("pipeline per workload", pipeline_cases);
      ("properties", qcheck_cases);
      ( "paper claims",
        [
          Alcotest.test_case "§4 concurrency bugs < 1 min" `Slow
            test_concurrency_bugs_under_a_minute;
          Alcotest.test_case "racy address precision" `Slow
            test_no_false_positive_addresses;
          Alcotest.test_case "read/write set focus" `Slow
            test_write_read_sets_focus;
          Alcotest.test_case "§6 hash via re-execution" `Slow
            test_hash_requires_forward_reexecution;
          Alcotest.test_case "suffix cost flat in length" `Slow
            test_res_flat_forward_growing;
        ] );
    ]
