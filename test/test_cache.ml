(* The crash-only result cache: content-key derivation, sealed-entry
   store/find round trips, quarantine of damaged entries, torn-journal
   recovery at open, injected disk faults through the I/O shim, the
   triage-row codec, and cold/warm byte-identity of cached batch triage.
   The invariant under test: a cache in any state of disrepair — torn,
   bit-flipped, garbage, or on a failing disk — changes triage wall
   clock, never triage bytes. *)

module Cache = Res_cache.Cache
module Sealing = Res_core.Sealing
module Shim = Res_core.Ioshim
module Io = Res_vm.Coredump_io

let tmp_dir =
  let count = ref 0 in
  fun () ->
    incr count;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Fmt.str "res-cache-test-%d-%d" (Unix.getpid ()) !count)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

(* --- content keys ----------------------------------------------------- *)

let test_content_key_shape () =
  let k = Sealing.content_key [ "prog"; "dump"; "config" ] in
  Alcotest.(check int) "16 hex chars" 16 (String.length k);
  String.iter
    (fun c ->
      Alcotest.(check bool) "hex digit" true
        ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    k;
  Alcotest.(check string) "deterministic" k
    (Sealing.content_key [ "prog"; "dump"; "config" ])

let test_content_key_part_boundaries () =
  (* length-prefixed folding: moving a byte across a part boundary must
     change the key, or (prog="ab", dump="c") would collide with
     (prog="a", dump="bc") *)
  Alcotest.(check bool) "boundary shift changes key" false
    (String.equal
       (Sealing.content_key [ "ab"; "c" ])
       (Sealing.content_key [ "a"; "bc" ]));
  Alcotest.(check bool) "any byte changes key" false
    (String.equal
       (Sealing.content_key [ "prog"; "dump"; "config" ])
       (Sealing.content_key [ "prog"; "dump"; "confih" ]))

(* --- store / find round trip ------------------------------------------ *)

let test_store_find_roundtrip () =
  let c = Cache.openr (tmp_dir ()) in
  let k = Cache.key ~prog:"p" ~dump:"d" ~config:"cfg" in
  Alcotest.(check bool) "empty cache misses" true (Cache.find c k = None);
  Cache.store c k "verdict body";
  (match Cache.find c k with
  | Some body -> Alcotest.(check string) "body back" "verdict body\n" body
  | None -> Alcotest.fail "stored entry did not hit");
  let s = Cache.stats c in
  Alcotest.(check int) "one miss" 1 s.Cache.misses;
  Alcotest.(check int) "one hit" 1 s.Cache.hits;
  Alcotest.(check int) "one store" 1 s.Cache.stores;
  Alcotest.(check int) "nothing quarantined" 0 s.Cache.quarantined

let test_entries_survive_reopen () =
  let dir = tmp_dir () in
  let c = Cache.openr dir in
  let k = Cache.key ~prog:"p" ~dump:"d" ~config:"cfg" in
  Cache.store c k "verdict body";
  let c2 = Cache.openr dir in
  Alcotest.(check bool) "hit after reopen" true
    (Cache.find c2 k = Some "verdict body\n");
  Alcotest.(check int) "one entry on disk" 1 (Cache.entry_count dir)

(* --- damage degrades to recompute ------------------------------------- *)

let test_damaged_entry_quarantined () =
  let dir = tmp_dir () in
  let c = Cache.openr dir in
  let k = Cache.key ~prog:"p" ~dump:"d" ~config:"cfg" in
  Cache.store c k "verdict body";
  let path = Filename.concat dir (k ^ ".entry") in
  let src = match Io.read_file path with Ok s -> s | Error _ -> "" in
  let b = Bytes.of_string src in
  let i = Bytes.length b / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  Alcotest.(check bool) "flipped bit reads as a miss" true
    (Cache.find c k = None);
  Alcotest.(check int) "entry quarantined" 1 (Cache.stats c).Cache.quarantined;
  Alcotest.(check bool) "entry moved out of the index" false
    (Sys.file_exists path);
  Alcotest.(check bool) "quarantined copy kept for the post-mortem" true
    (Sys.file_exists
       (Filename.concat (Filename.concat dir "quarantine") (k ^ ".entry")));
  (* the caller recomputes and re-stores: the key serves again *)
  Cache.store c k "verdict body";
  Alcotest.(check bool) "re-stored entry hits" true
    (Cache.find c k = Some "verdict body\n")

let test_garbage_cache_is_cold_cache () =
  let dir = tmp_dir () in
  let c = Cache.openr dir in
  let k = Cache.key ~prog:"p" ~dump:"d" ~config:"cfg" in
  let oc = open_out_bin (Filename.concat dir (k ^ ".entry")) in
  output_string oc "total garbage, never sealed";
  close_out oc;
  Alcotest.(check bool) "garbage is a miss, not a crash" true
    (Cache.find c k = None);
  Cache.store c k "real verdict";
  Alcotest.(check bool) "healed" true (Cache.find c k = Some "real verdict\n")

let test_torn_journal_recovered_at_open () =
  let dir = tmp_dir () in
  let c = Cache.openr dir in
  let k = Cache.key ~prog:"p" ~dump:"d" ~config:"cfg" in
  Cache.store c k "verdict body";
  (* a writer died mid-write: a torn (unsealed) tmp journal remains *)
  let torn = Io.fresh_tmp_path (Filename.concat dir (k ^ ".entry")) in
  let oc = open_out_bin torn in
  output_string oc "rescache v1\nhalf an entr";
  close_out oc;
  ignore (Cache.openr dir);
  Alcotest.(check bool) "torn journal deleted at open" false
    (Sys.file_exists torn);
  Alcotest.(check bool) "intact entry untouched" true
    (Cache.find (Cache.openr dir) k = Some "verdict body\n")

(* --- injected disk faults --------------------------------------------- *)

let test_store_survives_injected_faults () =
  let dir = tmp_dir () in
  let c = Cache.openr dir in
  let k = Cache.key ~prog:"p" ~dump:"d" ~config:"cfg" in
  List.iter
    (fun f ->
      Shim.with_injector
        (fun op path ->
          match op with
          | Shim.Write when String.length path >= String.length dir -> Some f
          | _ -> None)
        (fun () -> Cache.store c k "verdict body"))
    [ Shim.Enospc; Shim.Eio; Shim.Fsync_fail; Shim.Torn 7 ];
  let s = Cache.stats c in
  Alcotest.(check int) "every faulted store counted" 4 s.Cache.store_failures;
  Alcotest.(check int) "no faulted store claimed success" 0 s.Cache.stores;
  (* write faults leave realistic torn journals; reopen sweeps them *)
  ignore (Cache.openr dir);
  Array.iter
    (fun e ->
      Alcotest.(check bool) "no .tmp survives reopen" false
        (Filename.check_suffix e ".tmp"))
    (Sys.readdir dir);
  (* the disk healed: the same store now lands *)
  Cache.store c k "verdict body";
  Alcotest.(check bool) "store after faults hits" true
    (Cache.find c k = Some "verdict body\n")

let test_read_fault_degrades_to_miss () =
  let dir = tmp_dir () in
  let c = Cache.openr dir in
  let k = Cache.key ~prog:"p" ~dump:"d" ~config:"cfg" in
  Cache.store c k "verdict body";
  Shim.with_injector
    (fun op _ -> match op with Shim.Read -> Some Shim.Eio | _ -> None)
    (fun () ->
      Alcotest.(check bool) "EIO on read is a miss" true
        (Cache.find c k = None));
  Alcotest.(check int) "unreadable entry quarantined" 1
    (Cache.stats c).Cache.quarantined

let test_injector_restored_on_exit () =
  (try
     Shim.with_injector
       (fun _ _ -> Some Shim.Eio)
       (fun () -> raise Exit)
   with Exit -> ());
  let dir = tmp_dir () in
  let c = Cache.openr dir in
  let k = Cache.key ~prog:"p" ~dump:"d" ~config:"cfg" in
  Cache.store c k "body";
  Alcotest.(check bool) "faults do not leak past with_injector" true
    (Cache.find c k = Some "body\n")

let test_mkdir_fault_means_cold_forever () =
  let dir =
    Filename.concat (tmp_dir ()) "never-created"
  in
  let c =
    Shim.with_injector
      (fun op _ -> match op with Shim.Mkdir -> Some Shim.Eio | _ -> None)
      (fun () -> Cache.openr dir)
  in
  let k = Cache.key ~prog:"p" ~dump:"d" ~config:"cfg" in
  Alcotest.(check bool) "openr never raises; lookups miss" true
    (Cache.find c k = None);
  Cache.store c k "body";
  Alcotest.(check int) "stores into the void fail softly" 1
    (Cache.stats c).Cache.store_failures

(* --- the triage-row codec --------------------------------------------- *)

let test_row_roundtrip () =
  let r =
    {
      Cache.c_outcome = "complete";
      c_timeout = false;
      c_bucket = "div-zero @ main+3";
      c_cause = "x := 0 \"quoted\"\nnewline";
      c_nodes = 42;
      c_pruned = 7;
      c_queries = 99;
    }
  in
  match Cache.decode_row (Cache.encode_row r) with
  | Some r' ->
      Alcotest.(check string) "outcome" r.Cache.c_outcome r'.Cache.c_outcome;
      Alcotest.(check bool) "timeout" r.Cache.c_timeout r'.Cache.c_timeout;
      Alcotest.(check string) "bucket" r.Cache.c_bucket r'.Cache.c_bucket;
      Alcotest.(check string) "cause" r.Cache.c_cause r'.Cache.c_cause;
      Alcotest.(check int) "nodes" r.Cache.c_nodes r'.Cache.c_nodes;
      Alcotest.(check int) "pruned" r.Cache.c_pruned r'.Cache.c_pruned;
      Alcotest.(check int) "queries" r.Cache.c_queries r'.Cache.c_queries
  | None -> Alcotest.fail "row did not round-trip"

let test_row_decode_rejects_garbage () =
  Alcotest.(check bool) "garbage body is an honest miss" true
    (Cache.decode_row "not a verdict at all" = None);
  Alcotest.(check bool) "truncated body is an honest miss" true
    (Cache.decode_row "verdict \"complete\" 0" = None)

let test_row_config_covers_budgets () =
  let base = Cache.row_config ~wall:(Some 5.) ~fuel:(Some 100) ~engine:"e" in
  Alcotest.(check bool) "wall in key" false
    (String.equal base (Cache.row_config ~wall:(Some 6.) ~fuel:(Some 100) ~engine:"e"));
  Alcotest.(check bool) "fuel in key" false
    (String.equal base (Cache.row_config ~wall:(Some 5.) ~fuel:None ~engine:"e"));
  Alcotest.(check bool) "engine in key" false
    (String.equal base (Cache.row_config ~wall:(Some 5.) ~fuel:(Some 100) ~engine:"f"))

(* --- cached batch triage ---------------------------------------------- *)

let batch_items () =
  List.map
    (fun (r : Res_workloads.Corpus.report) ->
      {
        Res_parallel.Batch.it_name = Fmt.str "%s-%02d" r.r_bug r.r_id;
        it_prog = r.r_prog;
        it_dump = Ok r.r_dump;
      })
    (Res_workloads.Corpus.generate ~n_per_bug:1 ())

let test_batch_cold_warm_identity () =
  let items = batch_items () in
  let n = List.length items in
  let backend = Res_parallel.Pool.Forked in
  let baseline = Res_parallel.Batch.run ~jobs:1 ~backend items in
  let dir = tmp_dir () in
  let cold = Res_parallel.Batch.run ~jobs:1 ~backend ~cache:(Cache.openr dir) items in
  Alcotest.(check string) "cold TSV = uncached TSV"
    baseline.Res_parallel.Batch.tsv cold.Res_parallel.Batch.tsv;
  Alcotest.(check int) "cold run hit nothing" 0
    cold.Res_parallel.Batch.cache_hits;
  Alcotest.(check int) "every verdict stored" n (Cache.entry_count dir);
  let warm_cache = Cache.openr dir in
  let warm = Res_parallel.Batch.run ~jobs:1 ~backend ~cache:warm_cache items in
  Alcotest.(check string) "warm TSV = cold TSV"
    cold.Res_parallel.Batch.tsv warm.Res_parallel.Batch.tsv;
  Alcotest.(check int) "every row from the cache" n
    warm.Res_parallel.Batch.cache_hits;
  Alcotest.(check int) "warm run analyzed nothing" n
    (Cache.stats warm_cache).Cache.hits

let test_batch_budget_change_is_a_miss () =
  let items = batch_items () in
  let backend = Res_parallel.Pool.Forked in
  let dir = tmp_dir () in
  ignore (Res_parallel.Batch.run ~jobs:1 ~backend ~cache:(Cache.openr dir) items);
  (* a different fuel budget can change the verdict: it must never be
     served from entries computed under the old budget *)
  let other =
    Res_parallel.Batch.run ~jobs:1 ~backend ~budget_fuel:1_000_000
      ~cache:(Cache.openr dir) items
  in
  Alcotest.(check int) "budget change misses everything" 0
    other.Res_parallel.Batch.cache_hits

let test_batch_reverse_exec_flip_is_a_miss () =
  let items = batch_items () in
  let backend = Res_parallel.Pool.Forked in
  let dir = tmp_dir () in
  ignore (Res_parallel.Batch.run ~jobs:1 ~backend ~cache:(Cache.openr dir) items);
  (* disabling the concrete reverse-execution fast path must not be
     served entries computed with it on: equivalence between the two
     modes is an invariant under test elsewhere, never an assumption
     the cache may bake in *)
  let config =
    {
      Res_core.Res.default_config with
      search =
        { Res_core.Search.default_config with reverse_exec = false };
    }
  in
  let other =
    Res_parallel.Batch.run ~jobs:1 ~backend ~config ~cache:(Cache.openr dir)
      items
  in
  Alcotest.(check int) "reverse-exec flip misses everything" 0
    other.Res_parallel.Batch.cache_hits;
  (* same flag again: now every row is served from the second run's
     entries *)
  let again =
    Res_parallel.Batch.run ~jobs:1 ~backend ~config ~cache:(Cache.openr dir)
      items
  in
  Alcotest.(check int) "same flag hits everything" (List.length items)
    again.Res_parallel.Batch.cache_hits

let () =
  Alcotest.run "cache"
    [
      ( "keys",
        [
          Alcotest.test_case "content key shape" `Quick test_content_key_shape;
          Alcotest.test_case "part boundaries matter" `Quick
            test_content_key_part_boundaries;
          Alcotest.test_case "row_config covers budgets" `Quick
            test_row_config_covers_budgets;
        ] );
      ( "entries",
        [
          Alcotest.test_case "store/find round trip" `Quick
            test_store_find_roundtrip;
          Alcotest.test_case "entries survive reopen" `Quick
            test_entries_survive_reopen;
          Alcotest.test_case "damaged entry quarantined" `Quick
            test_damaged_entry_quarantined;
          Alcotest.test_case "garbage cache is a cold cache" `Quick
            test_garbage_cache_is_cold_cache;
          Alcotest.test_case "torn journal recovered at open" `Quick
            test_torn_journal_recovered_at_open;
        ] );
      ( "faults",
        [
          Alcotest.test_case "store survives injected faults" `Quick
            test_store_survives_injected_faults;
          Alcotest.test_case "read fault degrades to miss" `Quick
            test_read_fault_degrades_to_miss;
          Alcotest.test_case "injector restored on exit" `Quick
            test_injector_restored_on_exit;
          Alcotest.test_case "mkdir fault means cold forever" `Quick
            test_mkdir_fault_means_cold_forever;
        ] );
      ( "rows",
        [
          Alcotest.test_case "row round trip" `Quick test_row_roundtrip;
          Alcotest.test_case "decode rejects garbage" `Quick
            test_row_decode_rejects_garbage;
        ] );
      ( "batch",
        [
          Alcotest.test_case "cold/warm byte identity" `Quick
            test_batch_cold_warm_identity;
          Alcotest.test_case "budget change is a miss" `Quick
            test_batch_budget_change_is_a_miss;
          Alcotest.test_case "reverse-exec flip is a miss" `Quick
            test_batch_reverse_exec_flip_is_a_miss;
        ] );
    ]
