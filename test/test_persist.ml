(* Crash-safe checkpoint/resume tests: serializer round-trips over real
   mid-analysis states from every workload, loader rejection of damaged
   checkpoints (the PR-1 damage taxonomy), journal recovery of torn
   atomic writes, and kill-and-resume report equivalence.  The invariant
   under test: an analysis killed at any node boundary — even mid-
   checkpoint-write — resumes to bit-identical reports and never leaves a
   torn file on disk. *)

module Ckpt = Res_persist.Checkpoint
module Io = Res_vm.Coredump_io

let check = Alcotest.check
let bool_t = Alcotest.bool
let string_t = Alcotest.string

(* Exhaustive deepening (no early stop): searches run 6–70 nodes per
   workload, so kill points land mid-analysis and periodic checkpoints
   capture genuinely suspended frontiers. *)
let test_config =
  {
    Res_core.Res.search =
      {
        Res_core.Search.default_config with
        max_segments = 6;
        max_nodes = 2_000;
        max_suffixes = 8;
      };
    determinism_runs = 1;
    stop_at_first_cause = false;
    max_attempts = 2;
  }

(* Capture real mid-analysis checkpoint states for a workload by running
   the analysis with an in-memory checkpointer. *)
let captured_states ?(every = 3) (w : Res_workloads.Truth.t) =
  Res_solver.Expr.reset_counter_for_tests ();
  let dump = Res_workloads.Truth.coredump w in
  let ctx = Res_core.Backstep.make_ctx w.Res_workloads.Truth.w_prog in
  let states = ref [] in
  let checkpointer =
    {
      Res_core.Res.ck_every = every;
      ck_write =
        (fun st ->
          states := st :: !states;
          Ok "captured");
    }
  in
  ignore (Res_core.Res.analyze ~config:test_config ~checkpointer ctx dump);
  (dump, List.rev !states)

(* --- round-trip: serialize |> deserialize |> serialize is identity --- *)

let test_roundtrip_all_workloads () =
  List.iter
    (fun (w : Res_workloads.Truth.t) ->
      let dump, states = captured_states w in
      (* Also round-trip a synthetic "fresh" state so workloads whose
         analyses finish before the first periodic checkpoint still get
         coverage. *)
      let states =
        match states with
        | [] ->
            [
              {
                Res_core.Res.ck_attempt = 0;
                ck_max_nodes = 2_000;
                ck_depth = 1;
                ck_suffixes = [];
                ck_truncated = false;
                ck_nodes = 0;
                ck_cands = 0;
                ck_pruned = 0;
                ck_reversed = 0;
                ck_slice_skipped = 0;
                ck_synth = 0;
                ck_suspended = None;
                ck_fuel = Some 42;
                ck_expr_counter = 7;
              };
            ]
        | states -> states
      in
      List.iteri
        (fun i state ->
          let c =
            {
              Ckpt.config = test_config;
              prog = w.Res_workloads.Truth.w_prog;
              dump;
              state;
            }
          in
          let text = Ckpt.to_string c in
          match Ckpt.of_string text with
          | Error e ->
              Alcotest.failf "%s state %d: reload failed: %s"
                w.Res_workloads.Truth.w_name i (Io.dump_error_to_string e)
          | Ok c' ->
              check string_t
                (Fmt.str "%s state %d round-trips bit-identically"
                   w.Res_workloads.Truth.w_name i)
                text (Ckpt.to_string c'))
        states)
    Res_workloads.Workloads.all

(* --- loader rejection of damaged checkpoints --- *)

let sample_checkpoint_text () =
  let w = Res_workloads.Workloads.find "use-after-free-a" in
  let dump, states = captured_states w in
  let state =
    match states with s :: _ -> s | [] -> Alcotest.fail "no states captured"
  in
  Ckpt.to_string
    { Ckpt.config = test_config; prog = w.Res_workloads.Truth.w_prog; dump; state }

let classify text =
  match Ckpt.of_string text with
  | Ok _ -> "ok"
  | Error Io.Empty_dump -> "empty"
  | Error (Io.Bad_header _) -> "bad-header"
  | Error (Io.Truncated _) -> "truncated"
  | Error (Io.Corrupted _) -> "corrupted"
  | Error (Io.Malformed _) -> "malformed"
  | Error (Io.Unreadable _) -> "unreadable"

let test_loader_rejects_damage () =
  let text = sample_checkpoint_text () in
  check string_t "intact loads" "ok" (classify text);
  check string_t "empty rejected" "empty" (classify "");
  check string_t "garbage header rejected" "bad-header"
    (classify ("notacheckpoint v9\n" ^ text));
  check string_t "truncation detected" "truncated"
    (classify (String.sub text 0 (String.length text / 2)));
  (* Flip one bit in the middle of the payload: the FNV-1a footer must
     catch it. *)
  let flipped =
    let b = Bytes.of_string text in
    let i = Bytes.length b / 2 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
    Bytes.to_string b
  in
  check bool_t "bit flip detected" true
    (match classify flipped with
    | "corrupted" | "truncated" | "bad-header" -> true
    | _ -> false)

(* --- journal recovery of the atomic writer's .tmp sibling --- *)

let test_journal_promotes_completed_write () =
  let text = sample_checkpoint_text () in
  let path = "journal-promote.ckpt" in
  let write p s =
    let oc = open_out_bin p in
    output_string oc s;
    close_out oc
  in
  (* A complete write that died before its rename: only the .tmp exists. *)
  (try Sys.remove path with Sys_error _ -> ());
  write (path ^ ".tmp") text;
  (match Ckpt.load path with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "promoted journal should load: %s"
        (Io.dump_error_to_string e));
  check bool_t "journal promoted to path" true (Sys.file_exists path);
  check bool_t "journal consumed" false (Sys.file_exists (path ^ ".tmp"));
  Sys.remove path

let test_journal_discards_torn_write () =
  let text = sample_checkpoint_text () in
  let path = "journal-torn.ckpt" in
  let write p s =
    let oc = open_out_bin p in
    output_string oc s;
    close_out oc
  in
  (* A good checkpoint, then a torn half-written journal next to it. *)
  Ckpt.save path
    (match Ckpt.of_string text with
    | Ok c -> c
    | Error _ -> Alcotest.fail "sample text must parse");
  write (path ^ ".tmp") (String.sub text 0 (String.length text / 3));
  (match Ckpt.load path with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "good checkpoint should survive torn journal: %s"
        (Io.dump_error_to_string e));
  check bool_t "torn journal deleted" false (Sys.file_exists (path ^ ".tmp"));
  Sys.remove path

(* --- atomic coredump save --- *)

let test_coredump_save_atomic () =
  let w = Res_workloads.Workloads.find "div-by-zero" in
  let dump = Res_workloads.Truth.coredump w in
  let path = "atomic-dump.core" in
  Io.save path dump;
  check bool_t "no .tmp left behind" false (Sys.file_exists (path ^ ".tmp"));
  (match Io.load_result path with
  | Ok { Io.dump = loaded; _ } ->
      check string_t "saved dump round-trips" (Io.to_string dump)
        (Io.to_string loaded)
  | Error e ->
      Alcotest.failf "saved dump should load: %s" (Io.dump_error_to_string e));
  Sys.remove path

(* --- resume equivalence (single kill then unlimited resume) --- *)

let test_resume_bit_identical () =
  let w = Res_workloads.Workloads.find "use-after-free-a" in
  let baseline = Res_faultinject.Faultinject.kr_baseline w in
  List.iter
    (fun k ->
      let path = Fmt.str "resume-eq-%d.ckpt" k in
      Res_solver.Expr.reset_counter_for_tests ();
      let dump = Res_workloads.Truth.coredump w in
      let prog = w.Res_workloads.Truth.w_prog in
      let ctx = Res_core.Backstep.make_ctx prog in
      let cp =
        Ckpt.checkpointer ~every:3 ~path ~config:test_config ~prog ~dump ()
      in
      let first =
        Res_core.Res.analyze ~config:test_config
          ~budget:(Res_core.Budget.create ~fuel:k ())
          ~checkpointer:cp ctx dump
      in
      (match first with
      | Res_core.Res.Partial (Res_core.Res.Fuel_exhausted, a) ->
          check bool_t
            (Fmt.str "k=%d: partial outcome carries checkpoint path" k)
            true
            (a.Res_core.Res.checkpoint = Some path)
      | o ->
          Alcotest.failf "k=%d: expected fuel-exhausted partial, got %a" k
            Res_core.Res.pp_outcome o);
      let outcome =
        match Ckpt.load path with
        | Error e ->
            Alcotest.failf "k=%d: checkpoint load failed: %s" k
              (Io.dump_error_to_string e)
        | Ok ck ->
            let ctx' = Res_core.Backstep.make_ctx ck.Ckpt.prog in
            Res_core.Res.resume ~config:ck.Ckpt.config ctx' ck.Ckpt.dump
              ck.Ckpt.state
      in
      let rendered =
        Res_core.Report.reports_to_string ctx (Res_core.Res.analysis outcome)
      in
      check string_t (Fmt.str "k=%d: resume reconverges bit-identically" k)
        baseline rendered;
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove (path ^ ".tmp") with Sys_error _ -> ())
    [ 1; 4; 9 ]

(* --- the kill-and-resume campaign (repeated kills + torn write) --- *)

let test_kill_resume_campaign () =
  let workloads =
    [
      Res_workloads.Workloads.find "div-by-zero";
      Res_workloads.Workloads.find "use-after-free-a";
      Res_workloads.Workloads.find "double-free";
    ]
  in
  let s =
    Res_faultinject.Faultinject.kill_resume_campaign ~kills:[ 2; 9 ]
      ~torn_kill:13 ~workloads ()
  in
  List.iter
    (fun r ->
      Alcotest.failf "kill-resume failure: %a"
        (fun ppf -> Res_faultinject.Faultinject.pp_kr_run ppf)
        r)
    s.Res_faultinject.Faultinject.kr_failures;
  check bool_t "all chains bit-identical and clean" true
    (s.Res_faultinject.Faultinject.kr_ok
    = s.Res_faultinject.Faultinject.kr_total)

let () =
  Alcotest.run "persist"
    [
      ( "checkpoint",
        [
          Alcotest.test_case "round-trip over all workloads" `Quick
            test_roundtrip_all_workloads;
          Alcotest.test_case "loader rejects damage" `Quick
            test_loader_rejects_damage;
          Alcotest.test_case "journal promotes completed write" `Quick
            test_journal_promotes_completed_write;
          Alcotest.test_case "journal discards torn write" `Quick
            test_journal_discards_torn_write;
          Alcotest.test_case "coredump save is atomic" `Quick
            test_coredump_save_atomic;
        ] );
      ( "resume",
        [
          Alcotest.test_case "resume is bit-identical" `Quick
            test_resume_bit_identical;
          Alcotest.test_case "kill-and-resume campaign" `Quick
            test_kill_resume_campaign;
        ] );
    ]
