(* The triage cluster: address parsing, typed wire-frame damage over a
   real socketpair (torn headers, torn payloads, torn seals, oversized
   announcements, stalls — every one a classified error, never a hang),
   node-health registry transitions, the coordinator's at-most-once
   result journal, and a forked two-node end-to-end run whose merged TSV
   must be byte-identical to single-node batch triage — with and without
   a dead node in the fleet.

   The end-to-end tests fork node daemons; like test_parallel and
   test_serve, no domains are spawned in this binary, so fork is always
   legal. *)

module Wire = Res_parallel.Wire
module Pool = Res_parallel.Pool
module Batch = Res_parallel.Batch
module P = Res_serve.Protocol
module Server = Res_serve.Server
module Io = Res_vm.Coredump_io
module Transport = Res_cluster.Transport
module Registry = Res_cluster.Registry
module Journal = Res_cluster.Journal
module C = Res_cluster.Coordinator

(* --- addresses ------------------------------------------------------- *)

let test_parse_addr () =
  (match Transport.parse_addr "127.0.0.1:9000" with
  | Ok { Transport.host; port } ->
      Alcotest.(check string) "host" "127.0.0.1" host;
      Alcotest.(check int) "port" 9000 port
  | Error e -> Alcotest.fail e);
  (match Transport.parse_addr "triage-3.internal:65535" with
  | Ok { Transport.host; port } ->
      Alcotest.(check string) "named host" "triage-3.internal" host;
      Alcotest.(check int) "max port" 65535 port
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Transport.parse_addr bad with
      | Ok _ -> Alcotest.fail (Fmt.str "%S must not parse" bad)
      | Error _ -> ())
    [ "localhost"; ":9000"; "host:"; "host:0"; "host:65536"; "host:port" ]

(* --- wire-frame damage over a real socketpair ------------------------ *)

(* Each scenario writes a damaged byte stream into one end of a
   socketpair and asserts the reader classifies it without hanging. *)
let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ a; b ])
    (fun () -> f a b)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

let fail_on s = Alcotest.fail (Fmt.str "classified wrongly: %s" s)

let test_damage_eof_at_boundary () =
  with_socketpair (fun w r ->
      Unix.close w;
      (match Wire.read_frame_result r with
      | Error Wire.Frame_eof -> ()
      | _ -> fail_on "EOF at a frame boundary must be Frame_eof");
      match Transport.recv ~timeout:1.0 r with
      | Error Transport.Closed -> ()
      | _ -> fail_on "transport EOF at a boundary must be Closed")

let test_damage_torn_header () =
  with_socketpair (fun w r ->
      write_all w "00000";
      Unix.close w;
      match Wire.read_frame_result r with
      | Error (Wire.Frame_torn m) ->
          Alcotest.(check bool) "carries a diagnostic" true
            (String.length m > 0)
      | _ -> fail_on "truncation mid-length-prefix must be Frame_torn")

let test_damage_torn_header_transport () =
  with_socketpair (fun w r ->
      write_all w "00000";
      Unix.close w;
      match Transport.recv ~timeout:1.0 r with
      | Error (Transport.Damaged _) -> ()
      | _ -> fail_on "transport truncation mid-header must be Damaged")

let test_damage_torn_body () =
  with_socketpair (fun w r ->
      write_all w (Fmt.str "%010d" 100);
      write_all w "only ten b";
      Unix.close w;
      (match Wire.read_frame_result r with
      | Error (Wire.Frame_torn _) -> ()
      | _ -> fail_on "truncation mid-payload must be Frame_torn"));
  with_socketpair (fun w r ->
      write_all w (Fmt.str "%010d" 100);
      write_all w "only ten b";
      Unix.close w;
      match Transport.recv ~timeout:1.0 r with
      | Error (Transport.Damaged _) -> ()
      | _ -> fail_on "transport truncation mid-payload must be Damaged")

let test_damage_corrupt_prefix () =
  with_socketpair (fun w r ->
      write_all w "tenletters";
      (* a full, corrupt header: the length prefix is not a number *)
      Unix.close w;
      match Wire.read_frame_result r with
      | Error (Wire.Frame_torn _) -> ()
      | _ -> fail_on "a non-numeric length prefix must be Frame_torn")

let test_damage_oversized_prefix () =
  (* an oversized announcement is rejected before any allocation: the
     reader never tries to make a buffer of this size *)
  with_socketpair (fun w r ->
      write_all w (Fmt.str "%010d" (Wire.max_frame_bytes + 1));
      (match Wire.read_frame_result r with
      | Error (Wire.Frame_oversized n) ->
          Alcotest.(check int) "reports the announced size"
            (Wire.max_frame_bytes + 1) n
      | _ -> fail_on "an oversized length prefix must be Frame_oversized"));
  with_socketpair (fun w r ->
      write_all w (Fmt.str "%010d" (Wire.max_frame_bytes + 1));
      match Transport.recv ~timeout:1.0 r with
      | Error (Transport.Damaged _) -> ()
      | _ -> fail_on "transport oversized prefix must be Damaged")

let test_damage_stall_is_timeout () =
  (* a peer that goes silent mid-frame must surface as a deadline, not a
     hang: the whole point of the deadline-guarded reader *)
  with_socketpair (fun w r ->
      write_all w (Fmt.str "%010d" 100);
      write_all w "half";
      let t0 = Unix.gettimeofday () in
      match Transport.recv ~timeout:0.2 r with
      | Error (Transport.Timeout _) ->
          Alcotest.(check bool) "returned promptly" true
            (Unix.gettimeofday () -. t0 < 2.0)
      | _ -> fail_on "a mid-frame stall must be Timeout")

let test_damage_torn_seal () =
  (* the frame layer delivers an intact frame whose sealed payload was
     truncated mid-seal: the codec, not the transport, must reject it *)
  let reply =
    P.encode_reply
      (P.Err "a reply body long enough to truncate meaningfully")
  in
  let torn = String.sub reply 0 (String.length reply - 7) in
  with_socketpair (fun w r ->
      write_all w (Fmt.str "%010d" (String.length torn));
      write_all w torn;
      Unix.close w;
      match Transport.recv ~timeout:1.0 r with
      | Ok frame -> (
          match P.decode_reply frame with
          | Error _ -> ()
          | Ok _ -> fail_on "a torn seal must not decode")
      | Error e -> fail_on (Transport.error_to_string e))

(* --- registry -------------------------------------------------------- *)

let reg_addrs n =
  List.init n (fun i -> { Transport.host = "10.0.0.1"; port = 7000 + i })

let test_registry_backoff_then_dead () =
  let r = Registry.create ~attempts:3 ~backoff_base:1.0 ~backoff_cap:8.0
      (reg_addrs 2) in
  Alcotest.(check bool) "fresh node available" true
    (Registry.available r 0 ~now:0.);
  Registry.mark_failure r 0 ~now:0.;
  Alcotest.(check string) "one failure backs off" "backoff"
    (Registry.state_name (Registry.node r 0).Registry.nd_state);
  Alcotest.(check bool) "gated out during backoff" false
    (Registry.available r 0 ~now:0.);
  Alcotest.(check bool) "eligible after the gate" true
    (Registry.available r 0 ~now:10.);
  Registry.mark_failure r 0 ~now:10.;
  Registry.mark_failure r 0 ~now:20.;
  Alcotest.(check string) "third consecutive failure is death" "dead"
    (Registry.state_name (Registry.node r 0).Registry.nd_state);
  Alcotest.(check bool) "dead is never available" false
    (Registry.available r 0 ~now:1e9);
  Alcotest.(check int) "one dead node counted" 1 (Registry.dead_count r);
  Alcotest.(check bool) "fleet not all dead" false (Registry.all_dead r);
  Registry.mark_failure r 1 ~now:0.;
  Registry.mark_failure r 1 ~now:10.;
  Registry.mark_failure r 1 ~now:20.;
  Alcotest.(check bool) "both dead: all dead" true (Registry.all_dead r)

let test_registry_success_resets_streak () =
  let r = Registry.create ~attempts:2 ~backoff_base:1.0 ~backoff_cap:8.0
      (reg_addrs 1) in
  Registry.mark_failure r 0 ~now:0.;
  Registry.mark_success r 0;
  Alcotest.(check string) "success snaps back to up" "up"
    (Registry.state_name (Registry.node r 0).Registry.nd_state);
  Registry.mark_failure r 0 ~now:0.;
  Alcotest.(check string)
    "the streak restarted: one failure is backoff, not death" "backoff"
    (Registry.state_name (Registry.node r 0).Registry.nd_state);
  Alcotest.(check int) "total failures still accumulate" 2
    (Registry.node r 0).Registry.nd_failures

let test_registry_next_gate () =
  let r = Registry.create ~attempts:5 ~backoff_base:4.0 ~backoff_cap:64.0
      (reg_addrs 3) in
  Alcotest.(check bool) "no gate when everyone is up" true
    (Registry.next_gate r = None);
  Registry.mark_failure r 0 ~now:100.;
  Registry.mark_failure r 1 ~now:200.;
  match Registry.next_gate r with
  | Some g ->
      Alcotest.(check bool) "earliest gate belongs to the first failure" true
        (g >= 100. && g <= 200.)
  | None -> Alcotest.fail "two backing-off nodes must gate"

let test_registry_next_gate_all_dead () =
  (* Dead nodes must never contribute a gate: a gate over a dead fleet
     would make the dispatch loop sleep toward a wakeup that cannot
     help, instead of declaring the run lost.  All-dead means [None] —
     the loop's signal to stop waiting and fail the remaining units. *)
  let r = Registry.create ~attempts:1 ~backoff_base:4.0 ~backoff_cap:64.0
      (reg_addrs 2) in
  Registry.mark_failure r 0 ~now:100.;
  Registry.mark_failure r 1 ~now:200.;
  Alcotest.(check bool) "every node dead" true (Registry.all_dead r);
  Alcotest.(check bool) "no gate over a dead fleet" true
    (Registry.next_gate r = None)

(* --- journal --------------------------------------------------------- *)

let fresh_dir name =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "res-test-%s-%d" name (Unix.getpid ()))
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let row_frame name =
  P.encode_reply
    (P.Row
       {
         rw_name = name;
         rw_outcome = "complete";
         rw_timeout = false;
         rw_elapsed_ms = 12;
         rw_bucket = "uaf|f:a:0";
         rw_cause = "free before use";
         rw_nodes = 9;
         rw_pruned = 2;
         rw_queries = 4;
       })

let test_journal_roundtrip () =
  let dir = fresh_dir "journal" in
  let j = Journal.openr dir in
  Alcotest.(check int) "fresh journal is empty" 0 (Journal.count dir);
  Journal.append j ~index:3 ~frame:(row_frame "bug-c");
  Journal.append j ~index:1 ~frame:(row_frame "bug-a");
  Alcotest.(check int) "two rows journaled" 2 (Journal.count dir);
  let rows = Journal.recovered_rows (Journal.openr dir) in
  Alcotest.(check (list string)) "rows recovered in index order"
    [ "bug-a"; "bug-c" ] (List.map fst rows);
  List.iter
    (fun (_, frame) ->
      match P.decode_reply frame with
      | Ok (P.Row _) -> ()
      | _ -> Alcotest.fail "journaled frame must decode to a Row")
    rows

let test_journal_recovers_torn_tmp () =
  let dir = fresh_dir "journal-torn" in
  let j = Journal.openr dir in
  Journal.append j ~index:0 ~frame:(row_frame "bug-a");
  (* a killed writer leaves a torn temp beside a missing destination: it
     must be discarded, not promoted *)
  let oc = open_out (Filename.concat dir "u0007.row.1234.1.tmp") in
  output_string oc "ressrvrep v1\nrow compl";
  close_out oc;
  (* and an intact temp must be promoted *)
  let oc = open_out (Filename.concat dir "u0008.row.1234.2.tmp") in
  output_string oc (row_frame "bug-b");
  close_out oc;
  let rows = Journal.recovered_rows (Journal.openr dir) in
  Alcotest.(check (list string))
    "intact temp promoted, torn temp discarded" [ "bug-a"; "bug-b" ]
    (List.map fst rows);
  Alcotest.(check bool) "torn temp gone" false
    (Sys.file_exists (Filename.concat dir "u0007.row"))

(* --- end-to-end: forked nodes, byte-identical merged TSV ------------- *)

let corpus_units () =
  let reports = Res_workloads.Corpus.generate ~n_per_bug:1 () in
  let items =
    List.map
      (fun (r : Res_workloads.Corpus.report) ->
        {
          Batch.it_name = Fmt.str "%s-%02d" r.r_bug r.r_id;
          it_prog = r.r_prog;
          it_dump = Ok r.r_dump;
        })
      reports
  in
  let units =
    List.map
      (fun (r : Res_workloads.Corpus.report) ->
        {
          C.ci_name = Fmt.str "%s-%02d" r.r_bug r.r_id;
          ci_prog = Res_ir.Prog.to_string r.r_prog;
          ci_dump = Io.to_string r.r_dump;
          ci_sig = Res_usecases.Triage.wer_key r.r_dump;
        })
      reports
  in
  (items, units)

let start_node ?(corrupt = "") ~name () =
  let fd, port = Transport.listen_ephemeral () in
  let pid =
    match Unix.fork () with
    | 0 ->
        (try
           Server.run
             {
               Server.default_config with
               Server.prebound = Some fd;
               spool_dir = Filename.concat (fresh_dir "nodes") name;
               jobs = 2;
               capacity = 8;
               fi_corrupt_rows = corrupt;
             }
         with _ -> Unix._exit 1);
        Unix._exit 0
    | pid -> pid
  in
  (* close the parent's copy so a dead node's port refuses connections
     instead of queueing them on an orphaned listen socket *)
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (pid, { Transport.host = "127.0.0.1"; port })

let wait_ready addr =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    Transport.ping addr
    || (Unix.gettimeofday () < deadline
       && begin
            Unix.sleepf 0.02;
            go ()
          end)
  in
  Alcotest.(check bool)
    (Fmt.str "node %s ready" (Transport.addr_to_string addr))
    true (go ())

let drain_node pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  let rec reap tries =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if tries = 0 then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid);
          Alcotest.fail "node did not drain"
        end
        else begin
          Unix.sleepf 0.05;
          reap (tries - 1)
        end
    | _, Unix.WEXITED 0 -> ()
    | _, _ -> Alcotest.fail "node drain did not exit 0"
  in
  reap 600

let test_cluster_matches_single_node () =
  let items, units = corpus_units () in
  (* fork-backed baseline: no domains may exist in this binary *)
  let baseline = Batch.run ~jobs:1 ~backend:Pool.Forked items in
  let pid1, addr1 = start_node ~name:"e2e-n1" () in
  let pid2, addr2 = start_node ~name:"e2e-n2" () in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [ Unix.WNOHANG ] pid)
          with Unix.Unix_error _ -> ())
        [ pid1; pid2 ])
    (fun () ->
      wait_ready addr1;
      wait_ready addr2;
      let journal = fresh_dir "e2e-journal" in
      let config =
        {
          C.default_config with
          C.nodes = [ addr1; addr2 ];
          journal_dir = Some journal;
        }
      in
      let t = C.run ~config units in
      Alcotest.(check string) "merged TSV = single-node triage"
        baseline.Batch.tsv t.C.tsv;
      Alcotest.(check int) "nothing lost" 0 t.C.stats.C.cs_lost;
      Alcotest.(check int) "every unit applied"
        (List.length units) t.C.stats.C.cs_applied;
      (* a re-run on the same journal is pure recovery: at-most-once
         application means no unit is re-dispatched, so even a fleet of
         unreachable nodes completes it *)
      let dead = { Transport.host = "127.0.0.1"; port = 1 } in
      let t2 =
        C.run
          ~config:{ config with C.nodes = [ dead ] }
          units
      in
      Alcotest.(check string) "journal replay reproduces the TSV"
        baseline.Batch.tsv t2.C.tsv;
      Alcotest.(check int) "all rows recovered, none re-run"
        (List.length units) t2.C.stats.C.cs_recovered;
      Alcotest.(check int) "recovery applied nothing new" 0
        t2.C.stats.C.cs_applied;
      drain_node pid1;
      drain_node pid2)

let test_cluster_survives_dead_node_in_fleet () =
  let items, units = corpus_units () in
  let baseline = Batch.run ~jobs:1 ~backend:Pool.Forked items in
  (* a listener bound and immediately closed: a port that refuses *)
  let dead_fd, dead_port = Transport.listen_ephemeral () in
  Unix.close dead_fd;
  let dead = { Transport.host = "127.0.0.1"; port = dead_port } in
  let pid1, addr1 = start_node ~name:"e2e-dead-n1" () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid1 Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [ Unix.WNOHANG ] pid1)
      with Unix.Unix_error _ -> ())
    (fun () ->
      wait_ready addr1;
      let config =
        {
          C.default_config with
          C.nodes = [ dead; addr1 ];
          node_attempts = 2;
        }
      in
      let t = C.run ~config units in
      Alcotest.(check string) "TSV identical despite a dead node"
        baseline.Batch.tsv t.C.tsv;
      Alcotest.(check int) "nothing lost" 0 t.C.stats.C.cs_lost;
      Alcotest.(check bool) "units routed at the dead node were retried"
        true (t.C.stats.C.cs_retries >= 1);
      Alcotest.(check bool) "refused connections were charged" true
        (t.C.stats.C.cs_node_failures >= 1);
      Alcotest.(check int) "the dead node was declared dead" 1
        t.C.stats.C.cs_nodes_dead;
      drain_node pid1)

(* --- byzantine nodes: lying answers are rejected, liars quarantined -- *)

(* A node that falsifies the unit name on every row it returns: the
   structural identity check must reject each lie, the registry must
   walk the liar down its Dead path, and the rescheduled units must
   still produce a TSV byte-identical to single-node triage. *)
let test_cluster_quarantines_byzantine_name () =
  let items, units = corpus_units () in
  let baseline = Batch.run ~jobs:1 ~backend:Pool.Forked items in
  let pid_h, addr_h = start_node ~name:"bz-honest" () in
  let pid_l, addr_l = start_node ~name:"bz-liar" ~corrupt:"name" () in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [ Unix.WNOHANG ] pid)
          with Unix.Unix_error _ -> ())
        [ pid_h; pid_l ])
    (fun () ->
      wait_ready addr_h;
      wait_ready addr_l;
      let config =
        {
          C.default_config with
          C.nodes = [ addr_h; addr_l ];
          node_attempts = 2;
        }
      in
      let t = C.run ~config units in
      Alcotest.(check string)
        "TSV identical despite a lying node" baseline.Batch.tsv t.C.tsv;
      Alcotest.(check int) "nothing lost" 0 t.C.stats.C.cs_lost;
      Alcotest.(check bool)
        "corrupted rows were rejected" true
        (t.C.stats.C.cs_byzantine >= 1);
      Alcotest.(check int) "the liar was quarantined as dead" 1
        t.C.stats.C.cs_nodes_dead;
      Alcotest.(check bool)
        "the liar's units were rescheduled" true
        (t.C.stats.C.cs_reschedules >= 1);
      drain_node pid_h)

(* A subtler liar: the row is structurally perfect but its verdict
   fields are fabricated.  Only the replay spot-check can expose it;
   with [verify_rows] off the same lie must poison the TSV, proving the
   defense (not luck) is what kept the first run clean. *)
let test_cluster_replay_catches_fabricated_fields () =
  let items, units = corpus_units () in
  let baseline = Batch.run ~jobs:1 ~backend:Pool.Forked items in
  let pid_h, addr_h = start_node ~name:"bzf-honest" () in
  let pid_l, addr_l = start_node ~name:"bzf-liar" ~corrupt:"fields" () in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [ Unix.WNOHANG ] pid)
          with Unix.Unix_error _ -> ())
        [ pid_h; pid_l ])
    (fun () ->
      wait_ready addr_h;
      wait_ready addr_l;
      let config spot_check verify_rows =
        {
          C.default_config with
          C.nodes = [ addr_h; addr_l ];
          node_attempts = 2;
          spot_check;
          verify_rows;
        }
      in
      let t = C.run ~config:(config 1 true) units in
      Alcotest.(check string)
        "TSV identical: every fabricated row re-derived and rejected"
        baseline.Batch.tsv t.C.tsv;
      Alcotest.(check int) "nothing lost" 0 t.C.stats.C.cs_lost;
      Alcotest.(check bool)
        "fabricated rows failed the replay" true
        (t.C.stats.C.cs_byzantine >= 1);
      Alcotest.(check int) "the liar was quarantined as dead" 1
        t.C.stats.C.cs_nodes_dead;
      (* negative control: with verification off the lie goes through *)
      let t2 = C.run ~config:(config 0 false) units in
      Alcotest.(check bool)
        "with verify_rows off, fabricated rows poison the TSV" false
        (String.equal baseline.Batch.tsv t2.C.tsv);
      Alcotest.(check int) "and none are counted byzantine" 0
        t2.C.stats.C.cs_byzantine;
      drain_node pid_h)

let () =
  Alcotest.run "cluster"
    [
      ( "transport",
        [
          Alcotest.test_case "parses host:port addresses" `Quick
            test_parse_addr;
          Alcotest.test_case "EOF at a boundary is Closed/Frame_eof" `Quick
            test_damage_eof_at_boundary;
          Alcotest.test_case "torn length prefix is typed" `Quick
            test_damage_torn_header;
          Alcotest.test_case "torn length prefix is Damaged" `Quick
            test_damage_torn_header_transport;
          Alcotest.test_case "torn payload is typed" `Quick
            test_damage_torn_body;
          Alcotest.test_case "corrupt length prefix is typed" `Quick
            test_damage_corrupt_prefix;
          Alcotest.test_case "oversized announcement rejected unallocated"
            `Quick test_damage_oversized_prefix;
          Alcotest.test_case "mid-frame stall is Timeout, never a hang"
            `Quick test_damage_stall_is_timeout;
          Alcotest.test_case "torn seal rejected by the codec" `Quick
            test_damage_torn_seal;
        ] );
      ( "registry",
        [
          Alcotest.test_case "failures back off, then die" `Quick
            test_registry_backoff_then_dead;
          Alcotest.test_case "success resets the streak" `Quick
            test_registry_success_resets_streak;
          Alcotest.test_case "earliest gate drives the sleep" `Quick
            test_registry_next_gate;
          Alcotest.test_case "no gate over a dead fleet" `Quick
            test_registry_next_gate_all_dead;
        ] );
      ( "journal",
        [
          Alcotest.test_case "append and recover rows" `Quick
            test_journal_roundtrip;
          Alcotest.test_case "torn temps discarded, intact promoted" `Quick
            test_journal_recovers_torn_tmp;
        ] );
      ( "coordinator",
        [
          Alcotest.test_case "two nodes match single-node triage" `Slow
            test_cluster_matches_single_node;
          Alcotest.test_case "a dead node reroutes, TSV unchanged" `Slow
            test_cluster_survives_dead_node_in_fleet;
          Alcotest.test_case "a name-lying node is quarantined" `Slow
            test_cluster_quarantines_byzantine_name;
          Alcotest.test_case "replay spot-check catches fabricated fields"
            `Slow test_cluster_replay_catches_fabricated_fields;
        ] );
    ]
