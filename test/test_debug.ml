(* Tests for the time-travel debugger (lib/debug) and the snapshot-indexed
   Debugger rebase (lib/core): indexed state reconstruction must be
   bit-for-bit the replay-from-zero baseline, reverse/forward navigation
   must round-trip, watchpoint and transition-watchpoint answers must
   match a linear scan, and scripted transcripts must be byte-identical
   across snapshot intervals. *)

open Res_core

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let string_t = Alcotest.string

module IMap = Map.Make (Int)

(* One reproducing suffix per workload, shared across tests. *)
let sessions = Hashtbl.create 16

let suffix_for (w : Res_workloads.Truth.t) =
  match Hashtbl.find_opt sessions w.Res_workloads.Truth.w_name with
  | Some v -> v
  | None ->
      let dump = Res_workloads.Truth.coredump w in
      let ctx = Backstep.make_ctx w.Res_workloads.Truth.w_prog in
      let result =
        Search.search
          ~config:
            { Search.default_config with max_segments = 8; max_suffixes = 8 }
          ctx dump
      in
      let suffixes =
        let complete, rest =
          List.partition
            (fun s -> s.Suffix.complete)
            result.Search.suffixes
        in
        complete @ rest
      in
      let rec first = function
        | [] -> Alcotest.failf "%s: no reproducing suffix" w.Res_workloads.Truth.w_name
        | s :: rest ->
            if (Replay.replay ctx s dump).Replay.reproduced then s
            else first rest
      in
      let v = (ctx, first suffixes, dump) in
      Hashtbl.add sessions w.Res_workloads.Truth.w_name v;
      v

let workload name =
  List.find
    (fun w -> w.Res_workloads.Truth.w_name = name)
    Res_workloads.Workloads.all

(* States are equal when their persistent components read equally; the
   tracer is presentation-only and ignored. *)
let states_equal (a : Res_vm.Exec.state) (b : Res_vm.Exec.state) =
  a.Res_vm.Exec.steps = b.Res_vm.Exec.steps
  && Res_mem.Memory.equal a.Res_vm.Exec.mem b.Res_vm.Exec.mem
  && Res_mem.Heap.blocks a.Res_vm.Exec.heap
     = Res_mem.Heap.blocks b.Res_vm.Exec.heap
  && IMap.equal Res_vm.Thread.equal a.Res_vm.Exec.threads
       b.Res_vm.Exec.threads

(* Copy the fields of the shared mutable seek cursor that tests compare. *)
let snap_state (st : Res_vm.Exec.state) =
  (st.Res_vm.Exec.steps, st.Res_vm.Exec.mem, st.Res_vm.Exec.heap,
   st.Res_vm.Exec.threads)

(* --- snapshot index vs replay-from-zero baseline --- *)

let test_index_matches_linear () =
  List.iter
    (fun wname ->
      let ctx, suffix, dump = suffix_for (workload wname) in
      let dbg =
        match Debugger.start ~snapshot_every:7 ctx suffix dump with
        | Ok d -> d
        | Error e -> Alcotest.fail e
      in
      let n = Debugger.total_steps dbg in
      check bool_t (wname ^ ": non-empty timeline") true (n > 0);
      (* every position: indexed seek == linear replay, bit for bit *)
      for p = 0 to n do
        let steps, mem, heap, threads = snap_state (Debugger.state_at dbg p) in
        let lin = Debugger.state_at_linear dbg p in
        check bool_t
          (Fmt.str "%s: state_at %d matches linear" wname p)
          true
          (states_equal lin
             { lin with Res_vm.Exec.steps; mem; heap; threads })
      done)
    [ "fig1-overflow"; "counter-race"; "double-free"; "long-exec-50" ]

let test_index_interval_sweep () =
  let ctx, suffix, dump = suffix_for (workload "counter-race") in
  let mems interval =
    let dbg =
      match Debugger.start ~snapshot_every:interval ctx suffix dump with
      | Ok d -> d
      | Error e -> Alcotest.fail e
    in
    List.init
      (Debugger.total_steps dbg + 1)
      (fun p ->
        Res_mem.Memory.bindings (Debugger.state_at dbg p).Res_vm.Exec.mem)
  in
  let base = mems 64 in
  List.iter
    (fun interval ->
      check bool_t
        (Fmt.str "interval %d yields identical memories" interval)
        true
        (mems interval = base))
    [ 1; 7; 0 ]

(* --- step / step-back round trips --- *)

let test_round_trip () =
  let ctx, suffix, dump = suffix_for (workload "counter-race") in
  let s =
    match Res_debug.Session.create ~interval:7 ctx suffix dump with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let null = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  let exec line =
    match Res_debug.Session.exec_line s null line with
    | `Ok -> ()
    | `Err -> Alcotest.failf "command failed: %s" line
    | `Quit -> Alcotest.fail "unexpected quit"
  in
  let n = Res_debug.Session.length s in
  (* forward k then back k lands at the start, from several anchors *)
  List.iter
    (fun k ->
      exec "goto 0";
      exec (Fmt.str "step %d" k);
      check int_t (Fmt.str "step %d" k) (min k n) (Res_debug.Session.position s);
      exec (Fmt.str "step-back %d" k);
      check int_t (Fmt.str "round trip %d" k) 0 (Res_debug.Session.position s))
    [ 1; 3; n; n + 5 ];
  (* state at an interior position equals a fresh linear reconstruction *)
  let dbg =
    match Debugger.start ~snapshot_every:7 ctx suffix dump with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  exec (Fmt.str "goto %d" (n / 2));
  exec "step-back 2";
  exec "step 2";
  let lin = Debugger.state_at_linear dbg (n / 2) in
  check bool_t "wandering preserves exactness" true
    (Res_mem.Memory.equal lin.Res_vm.Exec.mem
       (Debugger.state_at dbg (Res_debug.Session.position s)).Res_vm.Exec.mem)

(* --- breakpoints --- *)

let test_break_all () =
  let ctx, suffix, dump = suffix_for (workload "counter-race") in
  let dbg =
    match Debugger.start ctx suffix dump with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  let pc = Res_ir.Pc.v ~func:"worker" ~block:"upd" ~idx:2 in
  let all = Debugger.break_all dbg pc in
  check int_t "both racing writes found" 2 (List.length all);
  check bool_t "break_at is the head of break_all" true
    (Debugger.break_at dbg pc = Some (List.hd all));
  (* cross-check against a manual scan *)
  let manual = ref [] in
  for i = Debugger.length dbg - 1 downto 0 do
    if Res_ir.Pc.equal (Debugger.event_at dbg i).Res_vm.Event.pc pc then
      manual := i :: !manual
  done;
  check bool_t "break_all matches manual scan" true (all = !manual)

let test_shared_scan () =
  let ctx, suffix, dump = suffix_for (workload "counter-race") in
  let dbg =
    match Debugger.start ctx suffix dump with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  let layout =
    Res_mem.Layout.of_prog (workload "counter-race").Res_workloads.Truth.w_prog
  in
  let counter = Res_mem.Layout.global_base layout "counter" in
  let writes = Debugger.writes_to dbg counter in
  check int_t "two writes to the counter" 2 (List.length writes);
  List.iter
    (fun i ->
      check bool_t "writes_to entries are writes" true
        (Res_vm.Event.is_write (Debugger.event_at dbg i)))
    writes;
  (* steps_of_thread covers the trace exactly once *)
  let by_thread =
    List.concat_map (fun tid -> Debugger.steps_of_thread dbg tid) [ 0; 1; 2 ]
  in
  let n_events = Debugger.length dbg in
  check int_t "thread partition covers the trace" n_events
    (List.length by_thread)

(* --- watchpoints vs linear scan --- *)

let test_watchpoint_matches_scan () =
  let ctx, suffix, dump = suffix_for (workload "counter-race") in
  let s =
    match Res_debug.Session.create ~interval:7 ctx suffix dump with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let layout =
    Res_mem.Layout.of_prog (workload "counter-race").Res_workloads.Truth.w_prog
  in
  let counter = Res_mem.Layout.global_base layout "counter" in
  let dbg =
    match Debugger.start ~snapshot_every:7 ctx suffix dump with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  let n = Debugger.total_steps dbg in
  let value_at p =
    Res_mem.Memory.read (Debugger.state_at dbg p).Res_vm.Exec.mem counter
  in
  (* linear scan: first position where the value differs from position 0 *)
  let expected =
    let rec go p = if p > n then None else if value_at p <> value_at 0 then Some p else go (p + 1) in
    go 1
  in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  ignore (Res_debug.Session.exec_line s ppf (Fmt.str "watch [0x%x]" counter));
  ignore (Res_debug.Session.exec_line s ppf "continue");
  Format.pp_print_flush ppf ();
  (match expected with
  | Some p ->
      check int_t "continue stops where the linear scan says" p
        (Res_debug.Session.position s)
  | None -> Alcotest.fail "counter never changes?");
  check bool_t "transcript mentions the watchpoint" true
    (String.length (Buffer.contents buf) > 0)

(* --- transition watchpoints: binary search vs linear scan --- *)

let test_transition_matches_scan () =
  List.iter
    (fun wname ->
      let ctx, suffix, dump = suffix_for (workload wname) in
      let index = Res_debug.Snapindex.create ~interval:7 ctx suffix in
      let n = Res_debug.Snapindex.length index in
      (* predicate: the first-written address has reached its final value *)
      let addr =
        let v = Replay.replay ctx suffix dump in
        List.find_map
          (fun (e : Res_vm.Event.t) ->
            match e.Res_vm.Event.action with
            | Res_vm.Event.A_write { addr; _ } -> Some addr
            | _ -> None)
          v.Replay.trace
      in
      match addr with
      | None -> () (* workload without writes: nothing to search *)
      | Some addr ->
          let final = Res_mem.Memory.read dump.Res_vm.Coredump.mem addr in
          let eval st =
            if Res_mem.Memory.read st.Res_vm.Exec.mem addr = final then 1
            else 0
          in
          let linear =
            let v0 = eval (Res_debug.Snapindex.state_at index 0) in
            let rec go p =
              if p > n then None
              else if eval (Res_debug.Snapindex.state_at index p) <> v0 then
                Some p
              else go (p + 1)
            in
            go 1
          in
          (match Res_debug.Snapindex.find_transition index eval with
          | None ->
              check bool_t (wname ^ ": no transition iff endpoints agree")
                true (linear = None)
          | Some tr ->
              let p = tr.Res_debug.Snapindex.tr_pos in
              (* the returned pair really is an adjacent flip *)
              check bool_t (wname ^ ": genuine transition") true
                (eval (Res_debug.Snapindex.state_at index (p - 1))
                 <> eval (Res_debug.Snapindex.state_at index p));
              (* a monotone predicate makes it THE first flip *)
              (match linear with
              | Some lp when lp = p -> ()
              | Some lp ->
                  check bool_t
                    (Fmt.str "%s: bisection %d vs linear %d (non-monotone ok)"
                       wname p lp)
                    true
                    (eval (Res_debug.Snapindex.state_at index (p - 1)) = 0
                    && eval (Res_debug.Snapindex.state_at index p) = 1)
              | None -> Alcotest.fail (wname ^ ": bisection found a flip the scan missed"));
              (* O(log n) probes: endpoints + ceil(log2 n) bisections *)
              let bound =
                let rec log2 n = if n <= 1 then 0 else 1 + log2 ((n + 1) / 2) in
                2 + log2 n + 1
              in
              check bool_t
                (Fmt.str "%s: %d probes within O(log %d) bound %d" wname
                   tr.Res_debug.Snapindex.tr_probes n bound)
                true
                (tr.Res_debug.Snapindex.tr_probes <= bound)))
    [ "fig1-overflow"; "counter-race"; "long-exec-50"; "kvstore-stats-race" ]

(* --- scripted sessions: transcript byte-identity across intervals --- *)

let transcript interval ctx suffix dump script =
  match Res_debug.Session.create ~interval ctx suffix dump with
  | Error e -> Alcotest.fail e
  | Ok s ->
      let r = Res_debug.Script.run_lines s script in
      (r.Res_debug.Script.transcript, r.Res_debug.Script.exit_code)

let test_interval_transcripts () =
  List.iter
    (fun wname ->
      let ctx, suffix, dump = suffix_for (workload wname) in
      let script =
        [
          "where";
          "threads";
          "step 2";
          "list 2";
          "regs";
          "continue";
          "where";
          "step-back 3";
          "continue-back";
          "goto 0";
          "assert 1 + 1 == 2";
        ]
      in
      let base = transcript 64 ctx suffix dump script in
      List.iter
        (fun interval ->
          let t = transcript interval ctx suffix dump script in
          check string_t
            (Fmt.str "%s: interval %d transcript" wname interval)
            (fst base) (fst t);
          check int_t
            (Fmt.str "%s: interval %d exit code" wname interval)
            (snd base) (snd t))
        [ 7; 1; 0 ])
    [ "fig1-overflow"; "counter-race"; "long-exec-50" ]

(* --- script exit codes --- *)

let test_script_exit_codes () =
  let ctx, suffix, dump = suffix_for (workload "fig1-overflow") in
  let code script = snd (transcript 64 ctx suffix dump script) in
  check int_t "all asserts pass" 0 (code [ "where"; "assert 1" ]);
  check int_t "assert failure is 2" 2 (code [ "assert 0" ]);
  check int_t "parse error is 1" 1 (code [ "frobnicate" ]);
  check int_t "error beats assert failure" 1 (code [ "assert 0"; "frobnicate" ]);
  check int_t "quit stops the script" 0 (code [ "quit"; "frobnicate" ])

(* --- hostile input: every parse failure is a typed error ------------- *)

let test_predicate_negative_paths () =
  List.iter
    (fun src ->
      match Res_debug.Predicate.parse src with
      | Ok _ -> Alcotest.failf "%S must not parse" src
      | Error msg ->
          check bool_t
            (Fmt.str "%S fails with a reason" src)
            true
            (String.length msg > 0))
    [
      "";
      "0x";
      "99999999999999999999";
      String.make 5000 '(';
      String.make 5000 '-';
      String.make 5000 '[';
      "t99999999999999999999:r1";
      "1 +";
      "(1";
      "[w0";
      "@";
      "\x00\xff\xfe";
    ]

let test_command_negative_paths () =
  List.iter
    (fun line ->
      match Res_debug.Command.parse line with
      | Ok _ -> Alcotest.failf "%S must not parse" line
      | Error _ -> ())
    [
      "frobnicate";
      "step 99999999999999999999";
      "break";
      "break notanumber";
      "delete many args here";
      "print";
      "print " ^ String.make 4000 '(';
      "mem";
      "goto 0x";
      "assert";
    ]

(* Script lines the REPL must survive: oversized, NUL-laced, non-UTF8 —
   each a typed [error:] line and exit 1, never an exception, and the
   session keeps serving well-formed commands afterwards. *)
let test_script_hostile_lines () =
  let ctx, suffix, dump = suffix_for (workload "fig1-overflow") in
  let run script =
    match Res_debug.Session.create ~interval:64 ctx suffix dump with
    | Error e -> Alcotest.fail e
    | Ok s -> Res_debug.Script.run_lines s script
  in
  let code script = (run script).Res_debug.Script.exit_code in
  check int_t "oversized line is a typed error" 1
    (code [ "print " ^ String.make 8192 'a' ]);
  check int_t "NUL byte is a typed error" 1 (code [ "wh\x00ere" ]);
  check int_t "non-UTF8 garbage is a typed error" 1 (code [ "\xff\xfe\xc0" ]);
  check int_t "depth bomb is a typed error" 1
    (code [ "print " ^ String.make 4000 '(' ]);
  let r = run [ "\xff\xfe"; "assert 1 + 1 == 2" ] in
  check int_t "session survives the hostile line" 1
    r.Res_debug.Script.exit_code;
  check bool_t "and still executes what follows" true
    (let open Res_debug.Script in
     String.length r.transcript > 0);
  (* EOF mid-line: a script with no final newline still runs cleanly *)
  match Res_debug.Session.create ~interval:64 ctx suffix dump with
  | Error e -> Alcotest.fail e
  | Ok s ->
      check int_t "script without trailing newline" 0
        (Res_debug.Script.run_script s "where\nassert 1").Res_debug.Script
          .exit_code

(* --- the whole corpus drives the campaign --- *)

let test_campaign_subset () =
  let s =
    Res_faultinject.Faultinject.debug_equivalence_campaign
      ~workloads:
        [
          workload "lock-order-deadlock";
          workload "div-by-zero";
          workload "semantic-discount";
        ]
      ()
  in
  check int_t "subset campaign all equivalent" 3
    s.Res_faultinject.Faultinject.de_ok;
  check bool_t "no failures" true
    (s.Res_faultinject.Faultinject.de_failures = [])

let () =
  Alcotest.run "res_debug"
    [
      ( "snapshot index",
        [
          Alcotest.test_case "indexed state == linear replay" `Quick
            test_index_matches_linear;
          Alcotest.test_case "interval sweep identical" `Quick
            test_index_interval_sweep;
        ] );
      ( "navigation",
        [
          Alcotest.test_case "step/step-back round trips" `Quick
            test_round_trip;
        ] );
      ( "breakpoints",
        [
          Alcotest.test_case "break_all every hit" `Quick test_break_all;
          Alcotest.test_case "shared event scan" `Quick test_shared_scan;
        ] );
      ( "watchpoints",
        [
          Alcotest.test_case "watchpoint == linear scan" `Quick
            test_watchpoint_matches_scan;
          Alcotest.test_case "transition == linear scan, O(log n)" `Quick
            test_transition_matches_scan;
        ] );
      ( "scripts",
        [
          Alcotest.test_case "transcripts byte-identical across intervals"
            `Quick test_interval_transcripts;
          Alcotest.test_case "exit codes" `Quick test_script_exit_codes;
          Alcotest.test_case "campaign subset" `Quick test_campaign_subset;
        ] );
      ( "hostile-input",
        [
          Alcotest.test_case "predicate parser rejects typed" `Quick
            test_predicate_negative_paths;
          Alcotest.test_case "command parser rejects typed" `Quick
            test_command_negative_paths;
          Alcotest.test_case "script survives hostile lines" `Quick
            test_script_hostile_lines;
        ] );
    ]
