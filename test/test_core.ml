(* Unit tests for the RES core: symbolic snapshots, the backward step
   (including Figure 1's predecessor disambiguation), suffix search,
   deterministic replay, and the root-cause detectors. *)

open Res_core

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let fig1 = Res_workloads.Fig1.workload
let fig1_dump () = Res_workloads.Truth.coredump fig1
let fig1_ctx () = Backstep.make_ctx fig1.Res_workloads.Truth.w_prog

(* --- snapshots --- *)

let test_snapshot_of_coredump () =
  let dump = fig1_dump () in
  let snap = Snapshot.of_coredump dump in
  check int_t "no symbolic cells initially" 0 (Snapshot.symbolic_cells snap);
  check int_t "one thread" 1 (List.length (Snapshot.threads snap));
  let layout = Res_mem.Layout.of_prog fig1.Res_workloads.Truth.w_prog in
  let x_addr = Res_mem.Layout.global_base layout "x" in
  (match Snapshot.read_mem snap x_addr with
  | Res_solver.Expr.Const v -> check int_t "x=1 in dump snapshot" 1 v
  | _ -> Alcotest.fail "expected concrete value");
  (* overriding makes the cell symbolic *)
  let s = Res_solver.Expr.fresh "probe" in
  let snap = Snapshot.write_mem_over snap x_addr s in
  check int_t "one symbolic cell" 1 (Snapshot.symbolic_cells snap);
  check bool_t "override visible" true
    (Res_solver.Expr.equal (Snapshot.read_mem snap x_addr) s)

let test_snapshot_concretize () =
  let dump = fig1_dump () in
  let snap = Snapshot.of_coredump dump in
  let layout = Res_mem.Layout.of_prog fig1.Res_workloads.Truth.w_prog in
  let x_addr = Res_mem.Layout.global_base layout "x" in
  let sym = Res_solver.Expr.fresh_sym "v" in
  let snap = Snapshot.write_mem_over snap x_addr (Res_solver.Expr.Sym sym) in
  let model = Res_solver.Model.add sym 42 Res_solver.Model.empty in
  let mem = Snapshot.concrete_mem snap model in
  check int_t "model value materialized" 42 (Res_mem.Memory.read mem x_addr)

(* --- the Figure 1 backward step: predecessor disambiguation --- *)

let test_fig1_pred_disambiguation () =
  let dump = fig1_dump () in
  let ctx = fig1_ctx () in
  let snap0 = Snapshot.of_coredump dump in
  (* consume the crash segment (merge block) *)
  let r1 =
    Backstep.step_back ctx snap0 ~tid:0
      ~kind:
        (Backstep.K_partial (Some dump.Res_vm.Coredump.crash.Res_vm.Crash.kind))
  in
  check int_t "crash segment applies" 1 (List.length r1.Backstep.applied);
  let snap1 = (List.hd r1.Backstep.applied).Backstep.ap_snapshot in
  (* Pred1 stores x=1 (matches the dump), Pred2 stores x=2 (contradicts) *)
  let pred1 =
    Backstep.step_back ctx snap1 ~tid:0 ~kind:(Backstep.K_full { block = "pred1" })
  in
  let pred2 =
    Backstep.step_back ctx snap1 ~tid:0 ~kind:(Backstep.K_full { block = "pred2" })
  in
  check bool_t "pred1 feasible" true (pred1.Backstep.applied <> []);
  check bool_t "pred2 discarded" true (pred2.Backstep.applied = [])

let test_backstep_rejects_mid_segment_full () =
  let dump = fig1_dump () in
  let ctx = fig1_ctx () in
  let snap0 = Snapshot.of_coredump dump in
  (* the crashing thread is mid-segment: a full step must be refused *)
  let r =
    Backstep.step_back ctx snap0 ~tid:0 ~kind:(Backstep.K_full { block = "pred1" })
  in
  check bool_t "refused" true (r.Backstep.applied = []);
  check bool_t "with a reason" true (r.Backstep.rejects <> [])

(* --- search --- *)

let test_fig1_complete_search () =
  let dump = fig1_dump () in
  let ctx = fig1_ctx () in
  let result =
    Search.search
      ~config:
        { Search.default_config with max_segments = 6; max_suffixes = 4 }
      ctx dump
  in
  check bool_t "suffixes found" true (result.Search.suffixes <> []);
  check bool_t "a complete suffix exists" true
    (List.exists (fun s -> s.Suffix.complete) result.Search.suffixes);
  (* every complete suffix goes through pred1, never pred2 *)
  List.iter
    (fun s ->
      if s.Suffix.complete then begin
        let blocks = List.map (fun seg -> seg.Suffix.seg_block) s.Suffix.segments in
        check bool_t "pred1 in suffix" true (List.mem "pred1" blocks);
        check bool_t "pred2 absent" false (List.mem "pred2" blocks)
      end)
    result.Search.suffixes

let test_search_stats_accounting () =
  let dump = fig1_dump () in
  let ctx = fig1_ctx () in
  let result =
    Search.search
      ~config:{ Search.default_config with max_segments = 3 }
      ctx dump
  in
  let s = result.Search.stats in
  check bool_t "nodes counted" true (s.Search.nodes > 0);
  check bool_t "candidates >= feasible" true (s.Search.candidates >= s.Search.feasible);
  check bool_t "emitted = suffixes" true
    (s.Search.emitted = List.length result.Search.suffixes)

let test_search_budget () =
  let dump = fig1_dump () in
  let ctx = fig1_ctx () in
  let result =
    Search.search
      ~config:{ Search.default_config with max_segments = 6; max_nodes = 1 }
      ctx dump
  in
  check bool_t "budget flag set" false result.Search.complete

(* --- address-pool ablation --- *)

let test_addr_pool_ablation () =
  let w = Res_workloads.Counter_race.workload in
  let dump = Res_workloads.Truth.coredump w in
  let max_len use_addr_pool =
    let ctx = Backstep.make_ctx ~use_addr_pool w.Res_workloads.Truth.w_prog in
    let result =
      Search.search
        ~config:{ Search.default_config with max_segments = 8; max_suffixes = 8 }
        ctx dump
    in
    List.fold_left (fun acc s -> max acc (Suffix.length s)) 0
      result.Search.suffixes
  in
  let with_pool = max_len true and without = max_len false in
  check bool_t
    (Fmt.str "pool unlocks deeper suffixes (%d > %d)" with_pool without)
    true (with_pool > without)

(* --- minidump ablation --- *)

let test_minidump_keeps_both_predecessors () =
  let dump = fig1_dump () in
  let ctx = fig1_ctx () in
  let preds_kept snapshot0 =
    let result =
      Search.search
        ~config:{ Search.default_config with max_segments = 6; max_suffixes = 8 }
        ?snapshot0 ctx dump
    in
    List.concat_map
      (fun s ->
        if not s.Suffix.complete then []
        else
          List.filter
            (fun b -> b = "pred1" || b = "pred2")
            (List.map (fun seg -> seg.Suffix.seg_block) s.Suffix.segments))
      result.Search.suffixes
    |> List.sort_uniq compare
  in
  check (Alcotest.list Alcotest.string) "full dump disambiguates" [ "pred1" ]
    (preds_kept None);
  check (Alcotest.list Alcotest.string) "minidump cannot refute pred2"
    [ "pred1"; "pred2" ]
    (preds_kept
       (Some (Snapshot.of_minidump dump ~layout:ctx.Backstep.layout)))

(* --- breadcrumbs (LBR pruning) --- *)

let test_lbr_prunes_candidates () =
  let w = Res_workloads.Long_exec.workload_n 8 in
  let dump = Res_workloads.Truth.coredump w in
  let ctx = Backstep.make_ctx w.Res_workloads.Truth.w_prog in
  let run ~crumbs =
    let result =
      Search.search
        ~config:
          {
            Search.default_config with
            max_segments = 5;
            max_suffixes = 16;
            use_breadcrumbs = crumbs;
          }
        ctx dump
    in
    result.Search.stats.Search.candidates
  in
  let without = run ~crumbs:false and with_lbr = run ~crumbs:true in
  check bool_t
    (Fmt.str "LBR prunes candidates (%d -> %d)" without with_lbr)
    true (with_lbr <= without)

(* --- replay --- *)

let test_replay_exact_and_deterministic () =
  let dump = fig1_dump () in
  let ctx = fig1_ctx () in
  let result =
    Search.search
      ~config:{ Search.default_config with max_segments = 6 }
      ctx dump
  in
  let suffix =
    match List.find_opt (fun s -> s.Suffix.complete) result.Search.suffixes with
    | Some s -> s
    | None -> List.hd result.Search.suffixes
  in
  let ok, verdicts = Replay.replay_deterministically ~times:5 ctx suffix dump in
  check bool_t "5/5 deterministic reproductions" true ok;
  check int_t "five verdicts" 5 (List.length verdicts);
  List.iter
    (fun (v : Replay.verdict) ->
      check bool_t "trace non-empty" true (v.Replay.trace <> []))
    verdicts

let test_replay_detects_tampered_suffix () =
  (* corrupting the model must break exact reproduction *)
  let dump = fig1_dump () in
  let ctx = fig1_ctx () in
  let result =
    Search.search
      ~config:{ Search.default_config with max_segments = 6 }
      ctx dump
  in
  let suffix =
    List.find (fun s -> s.Suffix.complete) result.Search.suffixes
  in
  (* smash every model binding *)
  let bad_model =
    List.fold_left
      (fun m (id, _) -> Res_solver.Model.add { Res_solver.Expr.id; name = "" } 99991 m)
      suffix.Suffix.model
      (Res_solver.Model.bindings suffix.Suffix.model)
  in
  let bad = { suffix with Suffix.model = bad_model } in
  let v = Replay.replay ctx bad dump in
  check bool_t "tampered replay rejected" false v.Replay.reproduced

(* --- suffix accessors --- *)

let test_suffix_accessors () =
  let dump = fig1_dump () in
  let ctx = fig1_ctx () in
  let result =
    Search.search
      ~config:{ Search.default_config with max_segments = 6 }
      ctx dump
  in
  let s = List.find (fun s -> s.Suffix.complete) result.Search.suffixes in
  check int_t "schedule length = segments" (Suffix.length s)
    (List.length (Suffix.schedule s));
  check int_t "two inputs consumed" 2 (List.length (Suffix.input_script s));
  check bool_t "write set non-empty" true (Suffix.write_set s <> []);
  check bool_t "steps counted" true (Suffix.length_steps s > 0)

(* --- root-cause detectors on hand-built traces --- *)

let mk_event step tid func block idx action =
  {
    Res_vm.Event.step;
    tid;
    pc = Res_ir.Pc.v ~func ~block ~idx;
    action;
  }

let test_find_races_positive () =
  (* two unsynchronized writes to the same address by different threads *)
  let trace =
    [
      mk_event 0 1 "w" "b" 0 (Res_vm.Event.A_write { addr = 100; value = 1; old = 0 });
      mk_event 1 2 "w" "b" 0 (Res_vm.Event.A_write { addr = 100; value = 2; old = 1 });
    ]
  in
  check bool_t "race found" true (Rootcause.find_races trace <> [])

let test_find_races_lock_ordered () =
  (* same accesses, but ordered by unlock -> lock: no race *)
  let trace =
    [
      mk_event 0 1 "w" "b" 0 (Res_vm.Event.A_lock { addr = 5 });
      mk_event 1 1 "w" "b" 1 (Res_vm.Event.A_write { addr = 100; value = 1; old = 0 });
      mk_event 2 1 "w" "b" 2 (Res_vm.Event.A_unlock { addr = 5 });
      mk_event 3 2 "w" "b" 0 (Res_vm.Event.A_lock { addr = 5 });
      mk_event 4 2 "w" "b" 1 (Res_vm.Event.A_write { addr = 100; value = 2; old = 1 });
      mk_event 5 2 "w" "b" 2 (Res_vm.Event.A_unlock { addr = 5 });
    ]
  in
  check bool_t "no race under lock ordering" true (Rootcause.find_races trace = [])

let test_find_races_join_ordered () =
  let trace =
    [
      mk_event 0 1 "w" "b" 0 (Res_vm.Event.A_write { addr = 100; value = 1; old = 0 });
      mk_event 1 1 "w" "b" 1 Res_vm.Event.A_halt;
      mk_event 2 0 "m" "b" 0 (Res_vm.Event.A_join { joined = 1 });
      mk_event 3 0 "m" "b" 1 (Res_vm.Event.A_read { addr = 100; value = 1 });
    ]
  in
  check bool_t "no race across join" true (Rootcause.find_races trace = [])

let test_find_atomicity_violation () =
  (* t1 reads, t2 writes, t1 writes: the lost update *)
  let trace =
    [
      mk_event 0 1 "w" "a" 0 (Res_vm.Event.A_read { addr = 7; value = 0 });
      mk_event 1 2 "w" "a" 0 (Res_vm.Event.A_write { addr = 7; value = 5; old = 0 });
      mk_event 2 1 "w" "b" 0 (Res_vm.Event.A_write { addr = 7; value = 1; old = 5 });
    ]
  in
  check bool_t "violation found" true (Rootcause.find_atomicity_violations trace <> []);
  (* without the intervening write there is none *)
  let clean =
    [
      mk_event 0 1 "w" "a" 0 (Res_vm.Event.A_read { addr = 7; value = 0 });
      mk_event 2 1 "w" "b" 0 (Res_vm.Event.A_write { addr = 7; value = 1; old = 0 });
    ]
  in
  check bool_t "no violation" true (Rootcause.find_atomicity_violations clean = [])

let test_signature_stability () =
  (* the same defect reported via race or atomicity keys identically *)
  let pc = Res_ir.Pc.v ~func:"w" ~block:"b" ~idx:0 in
  let race =
    Rootcause.Data_race
      { addr = 100; access1 = (pc, 1, true); access2 = (pc, 2, false) }
  in
  let atomicity =
    Rootcause.Atomicity_violation
      { addr = 100; read_pc = pc; intervening_pc = pc; write_pc = pc; tids = (1, 2) }
  in
  check Alcotest.string "keys agree" (Rootcause.signature race)
    (Rootcause.signature atomicity)

(* --- debugger --- *)

let race_session () =
  (* use a *complete* suffix so the workers' reads are inside the window *)
  let w = Res_workloads.Counter_race.workload in
  let dump = Res_workloads.Truth.coredump w in
  let ctx = Backstep.make_ctx w.Res_workloads.Truth.w_prog in
  let result =
    Search.search
      ~config:
        { Search.default_config with max_segments = 8; max_suffixes = 8 }
      ctx dump
  in
  let suffix =
    match List.find_opt (fun s -> s.Suffix.complete) result.Search.suffixes with
    | Some s -> s
    | None -> List.hd result.Search.suffixes
  in
  match Debugger.start ctx suffix dump with
  | Ok dbg -> (w, dump, dbg)
  | Error msg -> Alcotest.fail msg

let test_debugger_basics () =
  let w, dump, dbg = race_session () in
  ignore dump;
  check bool_t "non-empty listing" true (Debugger.length dbg > 0);
  let layout = Res_mem.Layout.of_prog w.Res_workloads.Truth.w_prog in
  let counter = Res_mem.Layout.global_base layout "counter" in
  (* final memory state seen by the debugger equals the coredump *)
  let last = Debugger.length dbg - 1 in
  check int_t "counter at crash" 1 (Debugger.mem_at dbg last counter);
  (* the instruction loading the counter for the failing assert is a
     breakpoint (the faulting assert itself never completes, so it has no
     trace event — same as a real debugger stopping *at* the fault) *)
  let load_pc = Res_ir.Pc.v ~func:"main" ~block:"check" ~idx:1 in
  (match Debugger.break_at dbg load_pc with
  | Some i ->
      check int_t "counter already corrupted at the load" 1
        (Debugger.mem_at dbg i counter)
  | None -> Alcotest.fail "load pc not found");
  (* write history of the counter is non-empty *)
  check bool_t "counter written in suffix" true
    (Debugger.writes_to dbg counter <> [])

let test_debugger_hypothesis () =
  let w, _dump, dbg = race_session () in
  let layout = Res_mem.Layout.of_prog w.Res_workloads.Truth.w_prog in
  let counter = Res_mem.Layout.global_base layout "counter" in
  (* in every reproduced racy suffix, some updating worker was preempted
     between its read and its write *)
  let preempted tid =
    match Debugger.preempted_before_update dbg ~tid ~addr:counter with
    | Some b -> b
    | None -> false
  in
  check bool_t "a worker was preempted mid-update" true
    (preempted 1 || preempted 2)

let test_debugger_rejects_bad_suffix () =
  let w = Res_workloads.Counter_race.workload in
  let dump = Res_workloads.Truth.coredump w in
  let ctx = Backstep.make_ctx w.Res_workloads.Truth.w_prog in
  let result =
    Search.search ~config:{ Search.default_config with max_segments = 2 } ctx dump
  in
  let suffix = List.hd result.Search.suffixes in
  let bad_model =
    List.fold_left
      (fun m (id, _) ->
        Res_solver.Model.add { Res_solver.Expr.id; name = "" } 77777 m)
      suffix.Suffix.model
      (Res_solver.Model.bindings suffix.Suffix.model)
  in
  match Debugger.start ctx { suffix with Suffix.model = bad_model } dump with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "session opened on a non-reproducing suffix"

(* --- error-log breadcrumbs --- *)

let logged_src =
  {|
global x 1
func main() {
entry:
  r0 = input net
  r1 = global x
  store r1[0] = r0
  log "x", r0
  jmp check
check:
  r2 = global x
  r3 = load r2[0]
  r4 = const 7
  r5 = eq r3, r4
  assert r5, "x is lucky"
  halt
}
|}

let test_log_breadcrumbs_bind_values () =
  (* the input value 9 is only recoverable from the log entry *)
  let prog = Res_ir.Validate.check_exn (Res_ir.Parser.parse logged_src) in
  let config =
    {
      (Res_vm.Exec.default_config ()) with
      oracle = Res_vm.Oracle.scripted [ 9 ];
    }
  in
  let dump =
    match Res_vm.Exec.run_to_coredump ~config prog with
    | Some d, _ -> d
    | None, _ -> Alcotest.fail "expected crash"
  in
  let ctx = Backstep.make_ctx prog in
  let search crumbs =
    Search.search
      ~config:
        { Search.default_config with max_segments = 4; use_breadcrumbs = crumbs }
      ctx dump
  in
  let with_crumbs = search true in
  check bool_t "suffix found with log crumbs" true
    (with_crumbs.Search.suffixes <> []);
  (* the input in the replayed suffix must be the logged 9 *)
  let s =
    List.find (fun s -> s.Suffix.complete) with_crumbs.Search.suffixes
  in
  check (Alcotest.list int_t) "input pinned by the log" [ 9 ]
    (Suffix.input_script s)

let test_log_breadcrumbs_prune_contradictions () =
  (* consume_logs rejects a segment whose emission contradicts the log *)
  let entry v = { Res_vm.Tracer.log_tid = 0; log_tag = "t"; log_value = v } in
  let e = Res_solver.Expr.fresh "v" in
  (match Search.consume_logs ~tid:0 [ ("t", e) ] [ entry 5 ] with
  | Some ([ c ], []) -> (
      match Res_solver.Solver.solve [ c ] with
      | Res_solver.Solver.Sat m ->
          check int_t "value bound to 5" 5 (Res_solver.Model.eval m e)
      | _ -> Alcotest.fail "expected sat")
  | _ -> Alcotest.fail "expected one constraint");
  (* wrong tag: pruned *)
  (match Search.consume_logs ~tid:0 [ ("other", e) ] [ entry 5 ] with
  | None -> ()
  | Some _ -> Alcotest.fail "tag mismatch not pruned");
  (* wrong tid: pruned *)
  (match Search.consume_logs ~tid:1 [ ("t", e) ] [ entry 5 ] with
  | None -> ()
  | Some _ -> Alcotest.fail "tid mismatch not pruned");
  (* segment logs with an exhausted dump log: pruned *)
  match Search.consume_logs ~tid:0 [ ("t", e) ] [] with
  | None -> ()
  | Some _ -> Alcotest.fail "exhausted log not pruned"

(* --- analyze (end-to-end driver) --- *)

let test_analyze_counter_race () =
  let w = Res_workloads.Counter_race.workload in
  let dump = Res_workloads.Truth.coredump w in
  let ctx = Backstep.make_ctx w.Res_workloads.Truth.w_prog in
  let analysis = Res.analysis (Res.analyze ctx dump) in
  check bool_t "reports exist" true (analysis.Res.reports <> []);
  match Res.best_cause analysis with
  | Some (Rootcause.Data_race _ | Rootcause.Atomicity_violation _) -> ()
  | Some c -> Alcotest.failf "wrong cause: %s" (Rootcause.signature c)
  | None -> Alcotest.fail "no cause"

let test_analyze_cpu_time_bounded () =
  (* §4: root cause in under a minute — ours are milliseconds, assert < 10s *)
  let w = Res_workloads.Counter_race.workload in
  let dump = Res_workloads.Truth.coredump w in
  let ctx = Backstep.make_ctx w.Res_workloads.Truth.w_prog in
  let analysis = Res.analysis (Res.analyze ctx dump) in
  check bool_t "well under a minute" true (analysis.Res.cpu_seconds < 10.0)

let () =
  Alcotest.run "res_core"
    [
      ( "snapshot",
        [
          Alcotest.test_case "of_coredump" `Quick test_snapshot_of_coredump;
          Alcotest.test_case "concretize" `Quick test_snapshot_concretize;
        ] );
      ( "backstep",
        [
          Alcotest.test_case "Fig.1 disambiguation" `Quick
            test_fig1_pred_disambiguation;
          Alcotest.test_case "mid-segment full refused" `Quick
            test_backstep_rejects_mid_segment_full;
        ] );
      ( "search",
        [
          Alcotest.test_case "Fig.1 complete suffix" `Quick
            test_fig1_complete_search;
          Alcotest.test_case "stats accounting" `Quick test_search_stats_accounting;
          Alcotest.test_case "node budget" `Quick test_search_budget;
          Alcotest.test_case "LBR pruning" `Quick test_lbr_prunes_candidates;
          Alcotest.test_case "minidump ablation" `Quick
            test_minidump_keeps_both_predecessors;
          Alcotest.test_case "address-pool ablation" `Quick
            test_addr_pool_ablation;
        ] );
      ( "replay",
        [
          Alcotest.test_case "exact + deterministic" `Quick
            test_replay_exact_and_deterministic;
          Alcotest.test_case "tampered model rejected" `Quick
            test_replay_detects_tampered_suffix;
          Alcotest.test_case "suffix accessors" `Quick test_suffix_accessors;
        ] );
      ( "rootcause",
        [
          Alcotest.test_case "race positive" `Quick test_find_races_positive;
          Alcotest.test_case "lock ordering" `Quick test_find_races_lock_ordered;
          Alcotest.test_case "join ordering" `Quick test_find_races_join_ordered;
          Alcotest.test_case "atomicity violation" `Quick
            test_find_atomicity_violation;
          Alcotest.test_case "signature stability" `Quick test_signature_stability;
        ] );
      ( "debugger",
        [
          Alcotest.test_case "basics" `Quick test_debugger_basics;
          Alcotest.test_case "hypothesis query" `Quick test_debugger_hypothesis;
          Alcotest.test_case "rejects bad suffix" `Quick
            test_debugger_rejects_bad_suffix;
        ] );
      ( "log breadcrumbs",
        [
          Alcotest.test_case "bind values" `Quick test_log_breadcrumbs_bind_values;
          Alcotest.test_case "prune contradictions" `Quick
            test_log_breadcrumbs_prune_contradictions;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "counter race end-to-end" `Quick
            test_analyze_counter_race;
          Alcotest.test_case "cpu time" `Quick test_analyze_cpu_time_bounded;
        ] );
    ]
