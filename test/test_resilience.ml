(* Resilience tests: the budget manager, the hardened coredump loader,
   graceful degradation of Res.analyze, the step-indexed fault plan, and
   the fault-injection self-test campaign.  The overarching invariant:
   hostile evidence and starved resources yield typed outcomes, never
   uncaught exceptions. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* --- Budget --- *)

let test_budget_fuel_trips () =
  let b = Res_core.Budget.create ~fuel:3 () in
  check bool_t "tick 1" true (Res_core.Budget.tick b);
  check bool_t "tick 2" true (Res_core.Budget.tick b);
  check bool_t "tick 3" true (Res_core.Budget.tick b);
  check bool_t "tick 4 exhausts" false (Res_core.Budget.tick b);
  (match Res_core.Budget.exhausted b with
  | Some Res_core.Budget.Fuel -> ()
  | Some Res_core.Budget.Deadline -> Alcotest.fail "expected Fuel, got Deadline"
  | None -> Alcotest.fail "expected exhaustion");
  (* exhaustion is sticky: once tripped, always tripped *)
  check bool_t "still exhausted" false (Res_core.Budget.ok b)

let test_budget_deadline_trips () =
  let b = Res_core.Budget.create ~wall_seconds:0.01 () in
  check bool_t "fresh budget ok" true (Res_core.Budget.ok b);
  Unix.sleepf 0.02;
  check bool_t "past deadline" false (Res_core.Budget.ok b);
  match Res_core.Budget.exhausted b with
  | Some Res_core.Budget.Deadline -> ()
  | _ -> Alcotest.fail "expected Deadline exhaustion"

let test_budget_unlimited () =
  let b = Res_core.Budget.unlimited () in
  for _ = 1 to 10_000 do
    ignore (Res_core.Budget.tick b)
  done;
  check bool_t "unlimited never exhausts" true (Res_core.Budget.ok b);
  check bool_t "no exhaustion recorded" true
    (Res_core.Budget.exhausted b = None)

let test_budget_cost () =
  let b = Res_core.Budget.create ~fuel:10 () in
  check bool_t "big tick spends all fuel" true
    (Res_core.Budget.tick ~cost:10 b);
  check bool_t "next tick fails" false (Res_core.Budget.tick b)

(* --- Coredump_io hardening --- *)

let sample_dump () = Res_workloads.Truth.coredump Res_workloads.Div_zero.workload

let classify text =
  match Res_vm.Coredump_io.of_string_result text with
  | Ok _ -> "ok"
  | Error e -> (
      match e with
      | Res_vm.Coredump_io.Empty_dump -> "empty"
      | Res_vm.Coredump_io.Bad_header _ -> "bad-header"
      | Res_vm.Coredump_io.Truncated _ -> "truncated"
      | Res_vm.Coredump_io.Corrupted _ -> "corrupted"
      | Res_vm.Coredump_io.Malformed _ -> "malformed"
      | Res_vm.Coredump_io.Unreadable _ -> "unreadable")

let test_dump_roundtrip () =
  let dump = sample_dump () in
  let text = Res_vm.Coredump_io.to_string dump in
  match Res_vm.Coredump_io.of_string_result text with
  | Ok { Res_vm.Coredump_io.dump = d; salvaged } ->
      check bool_t "no salvage needed" true (salvaged = None);
      check int_t "steps preserved" dump.Res_vm.Coredump.steps
        d.Res_vm.Coredump.steps
  | Error e ->
      Alcotest.fail (Res_vm.Coredump_io.dump_error_to_string e)

let test_dump_empty_classified () =
  check Alcotest.string "empty string" "empty" (classify "");
  check Alcotest.string "whitespace only" "empty" (classify "  \n\n ")

let test_dump_bad_header_classified () =
  check Alcotest.string "garbage header" "bad-header"
    (classify "notacoredump v9\nsteps 3\n")

let test_dump_truncation_classified () =
  let text = Res_vm.Coredump_io.to_string (sample_dump ()) in
  (* cut the footer off: line-count check fires *)
  let cut = String.sub text 0 (String.length text * 2 / 3) in
  check Alcotest.string "truncated dump" "truncated" (classify cut)

let test_dump_bitflip_classified () =
  let text = Res_vm.Coredump_io.to_string (sample_dump ()) in
  (* flip a payload byte well inside the dump: checksum check fires *)
  let b = Bytes.of_string text in
  let i = Bytes.length b / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  check Alcotest.string "corrupted dump" "corrupted"
    (classify (Bytes.to_string b))

let test_dump_legacy_v1_accepted () =
  let text = Res_vm.Coredump_io.to_string (sample_dump ()) in
  (* strip the v2 footer and downgrade the header: a legacy dump *)
  let no_footer = String.sub text 0 (String.rindex_from text (String.length text - 2) '\n' + 1) in
  let v1 =
    "coredump v1" ^ String.sub no_footer 11 (String.length no_footer - 11)
  in
  match Res_vm.Coredump_io.of_string_result v1 with
  | Ok _ -> ()
  | Error e ->
      Alcotest.fail
        ("v1 dump rejected: " ^ Res_vm.Coredump_io.dump_error_to_string e)

let test_dump_salvage_recovers_prefix () =
  let text = Res_vm.Coredump_io.to_string (sample_dump ()) in
  (* keep 90% of the bytes — crash record sits early, so salvage works *)
  let cut = String.sub text 0 (String.length text * 9 / 10) in
  match Res_vm.Coredump_io.of_string_result ~salvage:true cut with
  | Ok { Res_vm.Coredump_io.salvaged = Some _; _ } -> ()
  | Ok { Res_vm.Coredump_io.salvaged = None; _ } ->
      Alcotest.fail "expected salvage to be recorded"
  | Error e ->
      Alcotest.fail
        ("salvage failed: " ^ Res_vm.Coredump_io.dump_error_to_string e)

(* property: of_string_result NEVER raises, whatever we do to the bytes *)
let test_dump_no_exception_escapes () =
  let text = Res_vm.Coredump_io.to_string (sample_dump ()) in
  let n = String.length text in
  (* truncate at every 7th offset *)
  for i = 0 to n / 7 do
    let cut = String.sub text 0 (i * 7) in
    ignore (Res_vm.Coredump_io.of_string_result cut);
    ignore (Res_vm.Coredump_io.of_string_result ~salvage:true cut)
  done;
  (* flip each bit of every 13th byte *)
  for i = 0 to (n / 13) - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string text in
      let off = i * 13 in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl bit)));
      ignore (Res_vm.Coredump_io.of_string_result (Bytes.to_string b));
      ignore (Res_vm.Coredump_io.of_string_result ~salvage:true (Bytes.to_string b))
    done
  done

(* --- graceful degradation of Res.analyze --- *)

let test_analyze_one_fuel_is_partial () =
  let w = Res_workloads.Div_zero.workload in
  let dump = Res_workloads.Truth.coredump w in
  let ctx = Res_core.Backstep.make_ctx w.Res_workloads.Truth.w_prog in
  let budget = Res_core.Budget.create ~fuel:1 () in
  match Res_core.Res.analyze ~budget ctx dump with
  | Res_core.Res.Partial (Res_core.Res.Fuel_exhausted, a) ->
      (* stats must still be valid, reports may be empty *)
      check bool_t "non-negative nodes" true
        (a.Res_core.Res.nodes_expanded >= 0);
      check bool_t "non-negative candidates" true
        (a.Res_core.Res.candidates_tried >= 0);
      check bool_t "non-negative depth" true
        (a.Res_core.Res.depth_reached >= 0)
  | o ->
      Alcotest.fail
        (Fmt.str "expected Partial Fuel_exhausted, got %a"
           Res_core.Res.pp_outcome o)

let test_analyze_bad_dump_is_failed () =
  let w = Res_workloads.Div_zero.workload in
  let dump = Res_workloads.Truth.coredump w in
  let ctx = Res_core.Backstep.make_ctx w.Res_workloads.Truth.w_prog in
  (* a crash pc pointing at a function the program does not have *)
  let crash =
    {
      dump.Res_vm.Coredump.crash with
      Res_vm.Crash.pc = Res_ir.Pc.v ~func:"no_such_func" ~block:"entry" ~idx:0;
    }
  in
  let bad = { dump with Res_vm.Coredump.crash } in
  match Res_core.Res.analyze ctx bad with
  | Res_core.Res.Failed (Res_core.Res.Bad_dump _) -> ()
  | o ->
      Alcotest.fail
        (Fmt.str "expected Failed Bad_dump, got %a" Res_core.Res.pp_outcome o)

let test_analyze_complete_on_healthy_input () =
  let w = Res_workloads.Div_zero.workload in
  let dump = Res_workloads.Truth.coredump w in
  let ctx = Res_core.Backstep.make_ctx w.Res_workloads.Truth.w_prog in
  match Res_core.Res.analyze ctx dump with
  | Res_core.Res.Complete a ->
      check bool_t "has reports" true (a.Res_core.Res.reports <> [])
  | o ->
      Alcotest.fail
        (Fmt.str "expected Complete, got %a" Res_core.Res.pp_outcome o)

(* --- step-indexed fault plans --- *)

let test_fault_map_queries () =
  let f =
    Res_vm.Fault.bit_flip ~step:5 ~addr:100 ~bit:2
    |> fun f -> Res_vm.Fault.add_alu_error f ~step:7 ~delta:1
    |> fun f -> Res_vm.Fault.add_dma_write f ~step:5 ~addr:200 ~value:42
  in
  check int_t "alu delta at 7" 1 (Res_vm.Fault.alu_delta_at f ~step:7);
  check int_t "no alu delta at 5" 0 (Res_vm.Fault.alu_delta_at f ~step:5);
  check bool_t "not none" false (Res_vm.Fault.is_none f);
  check int_t "one bit flip" 1 (List.length (Res_vm.Fault.bit_flips f));
  check int_t "one dma write" 1 (List.length (Res_vm.Fault.dma_writes f));
  check int_t "one alu error" 1 (List.length (Res_vm.Fault.alu_errors f))

let test_fault_accessors_sorted () =
  let f =
    Res_vm.Fault.bit_flip ~step:9 ~addr:1 ~bit:0 |> fun f ->
    Res_vm.Fault.add_bit_flip f ~step:3 ~addr:2 ~bit:1 |> fun f ->
    Res_vm.Fault.add_bit_flip f ~step:6 ~addr:3 ~bit:2
  in
  let steps = List.map (fun (s, _, _) -> s) (Res_vm.Fault.bit_flips f) in
  check (Alcotest.list int_t) "ascending step order" [ 3; 6; 9 ] steps

(* --- the fault-injection campaign itself --- *)

let test_campaign_no_escapes () =
  let s = Res_faultinject.Faultinject.campaign ~seed:7 ~runs:54 () in
  check int_t "54 runs" 54 s.Res_faultinject.Faultinject.total;
  check int_t "zero escaped exceptions" 0
    (List.length s.Res_faultinject.Faultinject.escaped);
  (* every run landed in a typed bucket *)
  check int_t "buckets account for every run"
    s.Res_faultinject.Faultinject.total
    (s.Res_faultinject.Faultinject.complete
    + s.Res_faultinject.Faultinject.partial
    + s.Res_faultinject.Faultinject.failed
    + s.Res_faultinject.Faultinject.dump_errors)

let test_deadline_compliance () =
  let d =
    Res_faultinject.Faultinject.deadline_compliance ~deadline:1.0
      ~tolerance:0.10 ()
  in
  check bool_t "cut off by the clock" true
    d.Res_faultinject.Faultinject.d_hit_deadline;
  check bool_t
    (Fmt.str "within 10%% of deadline (elapsed %.3fs)"
       d.Res_faultinject.Faultinject.d_elapsed)
    true d.Res_faultinject.Faultinject.d_within

let () =
  Alcotest.run "resilience"
    [
      ( "budget",
        [
          Alcotest.test_case "fuel exhaustion trips and sticks" `Quick
            test_budget_fuel_trips;
          Alcotest.test_case "deadline exhaustion trips" `Quick
            test_budget_deadline_trips;
          Alcotest.test_case "unlimited budget never trips" `Quick
            test_budget_unlimited;
          Alcotest.test_case "tick cost is honored" `Quick test_budget_cost;
        ] );
      ( "coredump hardening",
        [
          Alcotest.test_case "v2 round-trip" `Quick test_dump_roundtrip;
          Alcotest.test_case "empty classified" `Quick
            test_dump_empty_classified;
          Alcotest.test_case "bad header classified" `Quick
            test_dump_bad_header_classified;
          Alcotest.test_case "truncation classified" `Quick
            test_dump_truncation_classified;
          Alcotest.test_case "bit flip classified" `Quick
            test_dump_bitflip_classified;
          Alcotest.test_case "legacy v1 accepted" `Quick
            test_dump_legacy_v1_accepted;
          Alcotest.test_case "salvage recovers prefix" `Quick
            test_dump_salvage_recovers_prefix;
          Alcotest.test_case "no exception escapes the loader" `Quick
            test_dump_no_exception_escapes;
        ] );
      ( "graceful degradation",
        [
          Alcotest.test_case "1-fuel budget yields Partial with valid stats"
            `Quick test_analyze_one_fuel_is_partial;
          Alcotest.test_case "invalid dump yields Failed Bad_dump" `Quick
            test_analyze_bad_dump_is_failed;
          Alcotest.test_case "healthy input yields Complete" `Quick
            test_analyze_complete_on_healthy_input;
        ] );
      ( "fault plan",
        [
          Alcotest.test_case "step-indexed queries" `Quick
            test_fault_map_queries;
          Alcotest.test_case "accessors ascending" `Quick
            test_fault_accessors_sorted;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "campaign of 54 perturbed analyses, no escapes"
            `Slow test_campaign_no_escapes;
          Alcotest.test_case "1s deadline honored within 10%" `Slow
            test_deadline_compliance;
        ] );
    ]
