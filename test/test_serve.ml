(* The triage service: circuit breaker state machine (with an injected
   clock, no sleeping), protocol codec round-trips and corruption
   rejection, spool durability and crash recovery, and one end-to-end
   daemon lifecycle over a real socket.

   The daemon test forks; like test_parallel, no domains are spawned in
   this binary, so fork is always legal. *)

module Breaker = Res_serve.Breaker
module P = Res_serve.Protocol
module Spool = Res_serve.Spool
module Server = Res_serve.Server
module Client = Res_serve.Client
module Io = Res_vm.Coredump_io

(* --- breaker --------------------------------------------------------- *)

(** A hand-cranked clock: breaker transitions driven by test time, not
    wall time. *)
let make_clock () =
  let t = ref 0. in
  ((fun () -> !t), fun dt -> t := !t +. dt)

let test_breaker_trips_at_threshold () =
  let now, _ = make_clock () in
  let b = Breaker.create ~threshold:3 ~cooldown:5.0 ~now () in
  Alcotest.(check bool) "closed passes" true (Breaker.check b "sig" = Breaker.Pass);
  Breaker.record_timeout b "sig";
  Breaker.record_timeout b "sig";
  Alcotest.(check bool) "still closed below threshold" true
    (Breaker.check b "sig" = Breaker.Pass);
  Breaker.record_timeout b "sig";
  Alcotest.(check string) "third consecutive timeout trips" "open"
    (Breaker.state_name (Breaker.state b "sig"));
  (match Breaker.check b "sig" with
  | Breaker.Reject { retry_ms } ->
      Alcotest.(check bool) "retry hint covers the cooldown" true
        (retry_ms > 0 && retry_ms <= 5000)
  | _ -> Alcotest.fail "open breaker must reject");
  Alcotest.(check int) "one trip recorded" 1 (Breaker.total_trips b)

let test_breaker_success_resets_count () =
  let now, _ = make_clock () in
  let b = Breaker.create ~threshold:3 ~cooldown:5.0 ~now () in
  Breaker.record_timeout b "sig";
  Breaker.record_timeout b "sig";
  Breaker.record_success b "sig";
  Breaker.record_timeout b "sig";
  Breaker.record_timeout b "sig";
  Alcotest.(check string) "a success resets the consecutive count" "closed"
    (Breaker.state_name (Breaker.state b "sig"))

let test_breaker_half_open_probe () =
  let now, advance = make_clock () in
  let b = Breaker.create ~threshold:1 ~cooldown:5.0 ~now () in
  Breaker.record_timeout b "sig";
  Alcotest.(check bool) "open rejects" true
    (match Breaker.check b "sig" with Breaker.Reject _ -> true | _ -> false);
  advance 5.5;
  Alcotest.(check bool) "cooldown elapsed: exactly one probe" true
    (Breaker.check b "sig" = Breaker.Probe);
  Alcotest.(check bool) "second caller during the probe is rejected" true
    (match Breaker.check b "sig" with Breaker.Reject _ -> true | _ -> false);
  Breaker.record_success b "sig";
  Alcotest.(check bool) "probe success closes" true
    (Breaker.check b "sig" = Breaker.Pass)

let test_breaker_probe_failure_reopens () =
  let now, advance = make_clock () in
  let b = Breaker.create ~threshold:1 ~cooldown:5.0 ~now () in
  Breaker.record_timeout b "sig";
  advance 5.5;
  Alcotest.(check bool) "probe admitted" true
    (Breaker.check b "sig" = Breaker.Probe);
  Breaker.record_timeout b "sig";
  Alcotest.(check string) "probe timeout reopens" "open"
    (Breaker.state_name (Breaker.state b "sig"));
  advance 2.0;
  Alcotest.(check bool) "cooldown restarted: still rejecting" true
    (match Breaker.check b "sig" with Breaker.Reject _ -> true | _ -> false);
  Alcotest.(check int) "each trip counted" 2 (Breaker.total_trips b)

let test_breaker_probe_outlives_cooldown () =
  (* The probe is still in flight when the cooldown elapses again: the
     breaker must keep rejecting — one probe per half-open episode, no
     matter how slow the probe is.  Only the probe's own outcome may
     move the state machine. *)
  let now, advance = make_clock () in
  let b = Breaker.create ~threshold:1 ~cooldown:5.0 ~now () in
  Breaker.record_timeout b "sig";
  advance 5.5;
  Alcotest.(check bool) "probe admitted" true
    (Breaker.check b "sig" = Breaker.Probe);
  advance 50.0;
  Alcotest.(check bool) "no second probe while the first is in flight" true
    (match Breaker.check b "sig" with Breaker.Reject _ -> true | _ -> false);
  Alcotest.(check string) "still half-open" "half-open"
    (Breaker.state_name (Breaker.state b "sig"));
  (* the slow probe finally times out: re-open, cooldown restarts from
     now — not from the long-gone first opening *)
  Breaker.record_timeout b "sig";
  Alcotest.(check bool) "cooldown restarted from the probe timeout" true
    (match Breaker.check b "sig" with Breaker.Reject _ -> true | _ -> false);
  advance 5.5;
  Alcotest.(check bool) "next episode gets its probe" true
    (Breaker.check b "sig" = Breaker.Probe)

let test_breaker_signatures_independent () =
  let now, _ = make_clock () in
  let b = Breaker.create ~threshold:1 ~cooldown:5.0 ~now () in
  Breaker.record_timeout b "tar-pit";
  Alcotest.(check bool) "other signatures unaffected" true
    (Breaker.check b "healthy" = Breaker.Pass);
  Alcotest.(check int) "one breaker open" 1 (Breaker.open_count b)

(* --- protocol -------------------------------------------------------- *)

(** Blob contents deliberately include every byte class the envelope or
    a naive escaper could mangle: NUL, CR, a line that looks like the
    seal footer, and the frame length prefix alphabet. *)
let hostile_blob = "a\000b\rc\nend 3 12345\n0123456789\n\"quoted\\\""

let roundtrip_request r =
  match P.decode_request (P.encode_request r) with
  | Ok r' -> r'
  | Error m -> Alcotest.fail ("request did not round-trip: " ^ m)

let roundtrip_reply r =
  match P.decode_reply (P.encode_reply r) with
  | Ok r' -> r'
  | Error m -> Alcotest.fail ("reply did not round-trip: " ^ m)

let test_protocol_request_roundtrip () =
  let submit =
    P.Submit
      {
        sb_prog = hostile_blob;
        sb_dump = String.concat "" (List.init 300 (fun i -> Fmt.str "%c" (Char.chr (i mod 256))));
        sb_deadline_ms = Some 1500;
        sb_fuel = None;
      }
  in
  (match roundtrip_request submit with
  | P.Submit { sb_prog; sb_dump; sb_deadline_ms; sb_fuel } ->
      (match submit with
      | P.Submit s ->
          Alcotest.(check string) "prog blob exact" s.sb_prog sb_prog;
          Alcotest.(check string) "dump blob exact" s.sb_dump sb_dump;
          Alcotest.(check (option int)) "deadline" s.sb_deadline_ms sb_deadline_ms;
          Alcotest.(check (option int)) "fuel" s.sb_fuel sb_fuel
      | _ -> assert false)
  | _ -> Alcotest.fail "submit decoded as another verb");
  List.iter
    (fun r ->
      Alcotest.(check bool) "simple request round-trips" true
        (roundtrip_request r = r))
    [ P.Fetch "r000017"; P.Status; P.Drain; P.Ping ]

let test_protocol_reply_roundtrip () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "reply round-trips" true (roundtrip_reply r = r))
    [
      P.Accepted { ac_id = "r000003"; ac_queued = 2 };
      P.Rejected_overload { ro_queued = 8; ro_capacity = 8 };
      P.Rejected_breaker { rb_signature = hostile_blob; rb_retry_ms = 4999 };
      P.Rejected_draining;
      P.Result
        {
          rs_id = "r000001";
          rs_outcome = "complete";
          rs_timeout = false;
          rs_elapsed_ms = 12;
          rs_body = hostile_blob;
        };
      P.Pending { pd_id = "r000009"; pd_state = "queued" };
      P.Unknown "r999999";
      P.Status_reply
        {
          st_accepted = 10;
          st_completed = 7;
          st_shed = 3;
          st_breaker_rejected = 1;
          st_recovered = 2;
          st_queued = 1;
          st_running = 2;
          st_worker_restarts = 4;
          st_breakers_open = 1;
          st_cache_hits = 5;
          st_draining = true;
          st_breakers =
            [ (hostile_blob, "open", 2); ("vm-crash|f:b:0", "closed", 0) ];
        };
      P.Row
        {
          rw_name = "bug-03";
          rw_outcome = "complete";
          rw_timeout = false;
          rw_elapsed_ms = 41;
          rw_bucket = hostile_blob;
          rw_cause = hostile_blob;
          rw_nodes = 17;
          rw_pruned = 3;
          rw_queries = 22;
        };
      P.Drained { dr_remaining = 3 };
      P.Pong 4242;
      P.Err "spool directory vanished";
    ]

let test_protocol_rejects_damage () =
  let sealed = P.encode_reply (P.Pong 1) in
  (* bit flip inside the payload: checksum must catch it *)
  let corrupt = Bytes.of_string sealed in
  Bytes.set corrupt (String.length sealed / 2) '\255';
  (match P.decode_reply (Bytes.to_string corrupt) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted payload decoded");
  (* truncation: footer gone *)
  (match P.decode_reply (String.sub sealed 0 (String.length sealed - 5)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated payload decoded");
  (* wrong envelope: a request is not a reply *)
  (match P.decode_reply (P.encode_request P.Ping) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "request envelope decoded as a reply");
  (* seal intact but the verb is garbage *)
  match P.decode_reply (Io.seal (P.rep_header ^ "\nfrobnicate 1 2\n")) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown verb decoded"

(* --- spool ----------------------------------------------------------- *)

let fresh_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let test_spool_accept_complete_pending () =
  let dir = fresh_dir "res_spool" in
  let s = Spool.openr dir in
  let f1 = P.encode_request (P.Fetch "x") in
  let id1 = Spool.accept s ~frame:f1 in
  let id2 = Spool.accept s ~frame:f1 in
  Alcotest.(check bool) "fresh ids distinct" true (id1 <> id2);
  Alcotest.(check (list string)) "both pending" [ id1; id2 ] (Spool.pending s);
  let rep =
    P.encode_reply
      (P.Result
         {
           rs_id = id1;
           rs_outcome = "complete";
           rs_timeout = false;
           rs_elapsed_ms = 1;
           rs_body = "b";
         })
  in
  Spool.complete s ~id:id1 ~frame:rep;
  Alcotest.(check (list string)) "completed id no longer pending" [ id2 ]
    (Spool.pending s);
  (match Spool.read_result s id1 with
  | Ok frame -> Alcotest.(check string) "result stored verbatim" rep frame
  | Error _ -> Alcotest.fail "stored result unreadable");
  (* a reopened spool (fresh daemon) sees the same picture and does not
     reuse ids *)
  let s2 = Spool.openr dir in
  Alcotest.(check (list string)) "pending survives reopen" [ id2 ]
    (Spool.pending s2);
  let id3 = Spool.accept s2 ~frame:f1 in
  Alcotest.(check bool) "ids advance past recovered ones" true
    (id3 <> id1 && id3 <> id2);
  List.iter (fun id -> Spool.remove s2 id) [ id1; id2; id3 ];
  Unix.rmdir dir

let test_spool_recovers_torn_journals () =
  let dir = fresh_dir "res_spool_torn" in
  let s = Spool.openr dir in
  let frame = P.encode_request P.Status in
  let id = Spool.accept s ~frame in
  (* a valid journal that a dying writer never renamed: must be promoted *)
  let promoted_dest = Filename.concat dir "r000907.req" in
  let valid_tmp = Io.fresh_tmp_path promoted_dest in
  let oc = open_out valid_tmp in
  output_string oc frame;
  close_out oc;
  (* a torn journal (seal broken): must be deleted, not promoted *)
  let torn_dest = Filename.concat dir "r000908.req" in
  let torn_tmp = Io.fresh_tmp_path torn_dest in
  let oc = open_out torn_tmp in
  output_string oc (String.sub frame 0 (String.length frame / 2));
  close_out oc;
  let s2 = Spool.openr dir in
  Alcotest.(check bool) "valid journal promoted" true
    (Sys.file_exists promoted_dest);
  Alcotest.(check bool) "torn journal deleted" false (Sys.file_exists torn_tmp);
  Alcotest.(check bool) "torn journal not promoted" false
    (Sys.file_exists torn_dest);
  Alcotest.(check (list string)) "promoted request joins pending"
    [ id; "r000907" ] (Spool.pending s2);
  List.iter (fun i -> Spool.remove s2 i) [ id; "r000907" ];
  Unix.rmdir dir

(* --- end-to-end daemon lifecycle ------------------------------------- *)

let workload_texts () =
  let w = Res_workloads.Workloads.find "fig1-overflow" in
  ( Res_ir.Prog.to_string w.Res_workloads.Truth.w_prog,
    Res_vm.Coredump_io.to_string (Res_workloads.Truth.coredump w) )

let offline_body prog_text dump_text =
  Res_solver.Expr.reset_counter_for_tests ();
  let prog = Res_ir.Validate.check_exn (Res_ir.Parser.parse prog_text) in
  let dump =
    match Io.of_string_result dump_text with
    | Ok { Io.dump; _ } -> dump
    | Error _ -> Alcotest.fail "test dump unreadable"
  in
  let ctx = Res_core.Backstep.make_ctx prog in
  let outcome = Res_core.Res.analyze ctx dump in
  Res_core.Report.report_list_to_string ctx (Res_core.Res.analysis outcome)

let test_daemon_lifecycle () =
  let dir = fresh_dir "res_e2e" in
  let socket = Filename.concat dir "s.sock" in
  let spool = Filename.concat dir "spool" in
  let cfg =
    {
      Server.default_config with
      Server.socket_path = socket;
      spool_dir = spool;
      jobs = 1;
      capacity = 4;
    }
  in
  let pid =
    match Unix.fork () with
    | 0 ->
        (try Server.run cfg with _ -> Unix._exit 1);
        Unix._exit 0
    | pid -> pid
  in
  let cleanup () =
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup (fun () ->
      let deadline = Unix.gettimeofday () +. 10. in
      let rec wait_ready () =
        match Client.ping ~timeout:1.0 socket with
        | Ok (P.Pong _) -> ()
        | _ ->
            if Unix.gettimeofday () > deadline then
              Alcotest.fail "daemon never became ready"
            else begin
              Unix.sleepf 0.02;
              wait_ready ()
            end
      in
      wait_ready ();
      let prog, dump = workload_texts () in
      (* malformed submission: typed error, nothing accepted *)
      (match Client.submit_wait socket ~prog:"not a program" ~dump () with
      | Ok (P.Err _, _) -> ()
      | Ok (r, _) ->
          Alcotest.failf "malformed submit: expected error, got %a" P.pp_reply r
      | Error e -> Alcotest.fail (Client.error_to_string e));
      (* good submission: accepted, result pushed, body byte-identical *)
      (match Client.submit_wait socket ~prog ~dump () with
      | Ok (P.Accepted { ac_id; _ }, Some (P.Result { rs_id; rs_outcome; rs_body; _ }))
        ->
          Alcotest.(check string) "result for our id" ac_id rs_id;
          Alcotest.(check string) "complete" "complete" rs_outcome;
          Alcotest.(check string) "body identical to offline analyze"
            (offline_body prog dump) rs_body;
          (* and the spooled copy serves fetch *)
          (match Client.fetch socket ac_id with
          | Ok (P.Result { rs_body = fetched; _ }) ->
              Alcotest.(check string) "fetch returns the same body" rs_body
                fetched
          | Ok reply ->
              Alcotest.failf "fetch: expected result, got %a" P.pp_reply reply
          | Error e -> Alcotest.fail (Client.error_to_string e))
      | Ok (reply, _) ->
          Alcotest.failf "submit: expected accepted+result, got %a" P.pp_reply
            reply
      | Error e -> Alcotest.fail (Client.error_to_string e));
      (match Client.fetch socket "r999999" with
      | Ok (P.Unknown _) -> ()
      | Ok r -> Alcotest.failf "expected unknown, got %a" P.pp_reply r
      | Error e -> Alcotest.fail (Client.error_to_string e));
      (* drain: daemon refuses new work and exits 0 *)
      (match Client.drain socket with
      | Ok (P.Drained _) -> ()
      | Ok r -> Alcotest.failf "expected drained, got %a" P.pp_reply r
      | Error e -> Alcotest.fail (Client.error_to_string e));
      let rec reap tries =
        if tries = 0 then Alcotest.fail "daemon did not exit after drain"
        else
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ ->
              Unix.sleepf 0.05;
              reap (tries - 1)
          | _, Unix.WEXITED 0 -> ()
          | _, _ -> Alcotest.fail "daemon exited abnormally"
      in
      reap 200)

let () =
  Alcotest.run "serve"
    [
      ( "breaker",
        [
          Alcotest.test_case "trips at threshold" `Quick
            test_breaker_trips_at_threshold;
          Alcotest.test_case "success resets the count" `Quick
            test_breaker_success_resets_count;
          Alcotest.test_case "half-open admits one probe" `Quick
            test_breaker_half_open_probe;
          Alcotest.test_case "probe failure reopens" `Quick
            test_breaker_probe_failure_reopens;
          Alcotest.test_case "probe outlives the cooldown" `Quick
            test_breaker_probe_outlives_cooldown;
          Alcotest.test_case "signatures independent" `Quick
            test_breaker_signatures_independent;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "requests round-trip (hostile blobs)" `Quick
            test_protocol_request_roundtrip;
          Alcotest.test_case "replies round-trip" `Quick
            test_protocol_reply_roundtrip;
          Alcotest.test_case "rejects corruption/truncation" `Quick
            test_protocol_rejects_damage;
        ] );
      ( "spool",
        [
          Alcotest.test_case "accept/complete/pending/reopen" `Quick
            test_spool_accept_complete_pending;
          Alcotest.test_case "torn journals recovered at boot" `Quick
            test_spool_recovers_torn_journals;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "submit/result/fetch/drain lifecycle" `Slow
            test_daemon_lifecycle;
        ] );
    ]
