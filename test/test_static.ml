(* Tests for the static-analysis layer (lib/static): mod/ref summaries,
   dominators, goal-directed reachability, the chain refuter that prunes
   the backward search, the lint suite, and the property the whole layer
   stands on — pruning never changes what the search reports, only how
   much work it does. *)

open Res_static

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let parse src = Res_ir.Parser.parse src

(* --- mod/ref summaries --- *)

let calls_src =
  {|
global a 1
global b 1
global m 1

func main() {
entry:
  r0 = call mid()
  halt
}

func mid() {
entry:
  r0 = global a
  r1 = load r0[0]
  r2 = call leaf(r1)
  ret r2
}

func leaf(r0) {
entry:
  r1 = global b
  store r1[0] = r0
  r2 = global m
  lock r2
  unlock r2
  ret r0
}
|}

let has_cell foot cell = Summary.CSet.mem cell foot.Summary.f_cells

let test_summary_transitive () =
  let s = Summary.of_prog (parse calls_src) in
  let direct = Summary.direct s "main" in
  check bool_t "direct main writes nothing" true
    (Summary.CSet.is_empty direct.Summary.s_mod.Summary.f_cells);
  check bool_t "direct main mod is known" false
    direct.Summary.s_mod.Summary.f_unknown;
  let trans = Summary.transitive s "main" in
  check bool_t "transitive main writes b[0] via leaf" true
    (has_cell trans.Summary.s_mod ("b", 0));
  check bool_t "transitive main reads a[0] via mid" true
    (has_cell trans.Summary.s_ref ("a", 0));
  check bool_t "transitive main locks m[0] via leaf" true
    (Summary.CSet.mem ("m", 0) trans.Summary.s_locks);
  check bool_t "transitive main does not write a[0]" false
    (has_cell trans.Summary.s_mod ("a", 0));
  check bool_t "no unknown accesses anywhere" false
    (trans.Summary.s_mod.Summary.f_unknown
    || trans.Summary.s_ref.Summary.f_unknown
    || trans.Summary.s_locks_unknown)

let test_summary_block_sum () =
  let prog = parse calls_src in
  let s = Summary.of_prog prog in
  let f = Res_ir.Prog.func prog "main" in
  let b = Res_ir.Func.block f "entry" in
  let sum = Summary.block_sum s f b in
  check bool_t "block with a call absorbs the callee's writes" true
    (has_cell sum.Summary.s_mod ("b", 0))

let test_summary_recursion_converges () =
  let src =
    {|
global a 1

func main() {
entry:
  r0 = call even()
  halt
}

func even() {
entry:
  r0 = global a
  r1 = load r0[0]
  r2 = call odd()
  ret r2
}

func odd() {
entry:
  r0 = global a
  r3 = const 1
  store r0[0] = r3
  r2 = call even()
  ret r2
}
|}
  in
  let s = Summary.of_prog (parse src) in
  let t = Summary.transitive s "even" in
  check bool_t "mutual recursion: cycle union reached" true
    (has_cell t.Summary.s_mod ("a", 0) && has_cell t.Summary.s_ref ("a", 0));
  check bool_t "unknown function gets the all-unknown summary" true
    (Summary.transitive s "nonexistent").Summary.s_mod.Summary.f_unknown

let test_summary_unresolved_is_unknown () =
  (* A store through an input-derived address cannot be resolved: the
     footprint must flag it rather than drop it. *)
  let src =
    {|
func main() {
entry:
  r0 = input net
  r1 = const 7
  store r0[0] = r1
  halt
}
|}
  in
  let s = Summary.of_prog (parse src) in
  let t = Summary.transitive s "main" in
  check bool_t "unresolved store sets the unknown flag" true
    t.Summary.s_mod.Summary.f_unknown;
  check bool_t "input flag set" true t.Summary.s_inputs

(* --- dominators / postdominators --- *)

let diamond_src =
  {|
func main(r0) {
entry:
  br r0, a, b
a:
  jmp exit
b:
  jmp exit
exit:
  halt
}
|}

let test_dominators () =
  let f = Res_ir.Prog.func (parse diamond_src) "main" in
  let doms = Dom.dominators f in
  check bool_t "entry dominates exit" true
    (Dom.dominates doms ~over:"exit" "entry");
  check bool_t "a does not dominate exit" false
    (Dom.dominates doms ~over:"exit" "a");
  check bool_t "a dominates itself" true (Dom.dominates doms ~over:"a" "a");
  check (Alcotest.option string_t) "idom of exit is entry" (Some "entry")
    (Dom.idom doms "exit");
  check (Alcotest.option string_t) "entry has no idom" None
    (Dom.idom doms "entry")

let test_postdominators () =
  let f = Res_ir.Prog.func (parse diamond_src) "main" in
  let pdoms = Dom.postdominators f in
  check bool_t "exit postdominates entry" true
    (Dom.dominates pdoms ~over:"entry" "exit");
  check bool_t "a does not postdominate entry" false
    (Dom.dominates pdoms ~over:"entry" "a");
  check (Alcotest.option string_t) "ipdom of entry is exit" (Some "exit")
    (Dom.idom pdoms "entry")

(* --- goal-directed reachability --- *)

let reach_src =
  {|
global g 1

func f(r1) {
entry:
  r0 = global g
  br r1, w, s
w:
  r2 = const 3
  store r0[0] = r2
  jmp t
s:
  jmp t
t:
  r3 = global g
  r4 = load r3[0]
  halt
}
|}

let test_reach_def_clear_paths () =
  let prog = parse reach_src in
  let s = Summary.of_prog prog in
  let f = Res_ir.Prog.func prog "f" in
  check bool_t "s-path reaches t def-clear" true
    (Reach.can_reach_without_write s f ~from:"s" ~target:"t" ("g", 0));
  check bool_t "w-path must write g[0] first" false
    (Reach.can_reach_without_write s f ~from:"w" ~target:"t" ("g", 0))

let test_reach_observable () =
  let src =
    {|
global g 1

func main() {
entry:
  r0 = global g
  r1 = const 1
  store r0[0] = r1
  r2 = const 2
  store r0[0] = r2
  r3 = load r0[0]
  halt
}
|}
  in
  let prog = parse src in
  let s = Summary.of_prog prog in
  let f = Res_ir.Prog.func prog "main" in
  check bool_t "first store is overwritten before any read" false
    (Reach.observable_after s f ~block:"entry" ~idx:2 ("g", 0));
  check bool_t "second store is read" true
    (Reach.observable_after s f ~block:"entry" ~idx:4 ("g", 0))

let test_reach_def_clear_between_edges () =
  (* Block-entry ([from_idx = -1]) and past-the-last-instruction edge
     cases of the def-clear corridor query. *)
  let prog = parse reach_src in
  let s = Summary.of_prog prog in
  let f = Res_ir.Prog.func prog "f" in
  check bool_t "entry->t: the s arm avoids the store" true
    (Reach.def_clear_between s f ~from_block:"entry" ~from_idx:(-1)
       ~to_block:"t" ("g", 0));
  check bool_t "w-entry->t: the store kills the corridor" false
    (Reach.def_clear_between s f ~from_block:"w" ~from_idx:(-1) ~to_block:"t"
       ("g", 0));
  check bool_t "after the store, w falls through clear" true
    (Reach.def_clear_between s f ~from_block:"w" ~from_idx:1 ~to_block:"t"
       ("g", 0));
  check bool_t "from_idx past the block end scans nothing" true
    (Reach.def_clear_between s f ~from_block:"w" ~from_idx:99 ~to_block:"t"
       ("g", 0));
  check bool_t "empty straight-line block is clear" true
    (Reach.def_clear_between s f ~from_block:"s" ~from_idx:(-1) ~to_block:"t"
       ("g", 0))

(* --- the chain refuter --- *)

let mk_query ?(tid = 0) ?(seed = fun _ -> Chain.Top)
    ?(post_mem = fun _ -> None) ?goal ?(relaxed = Chain.ISet.empty) prog =
  {
    Chain.q_prog = prog;
    q_summary = Summary.of_prog prog;
    q_tid = tid;
    q_seed = seed;
    q_post_mem = post_mem;
    q_goal = goal;
    q_relaxed_regs = relaxed;
    q_resolve_global = (fun g -> if g = "g" then Some 4096 else None);
    q_is_heap_addr = (fun _ -> false);
  }

let seg func block e = { Chain.sg_func = func; sg_block = block; sg_end = e }
let refuted = Alcotest.testable Fmt.(option string) (fun a b -> (a = None) = (b = None))

let test_chain_branch_contradiction () =
  let prog =
    parse
      {|
func main() {
entry:
  r0 = const 5
  br r0, a, b
a:
  halt
b:
  halt
}
|}
  in
  let q = mk_query prog in
  check refuted "constant 5 cannot take the zero arm" (Some "")
    (Chain.refute q [ seg "main" "entry" (Chain.End_branch "b") ]);
  check refuted "constant 5 takes the nonzero arm" None
    (Chain.refute q [ seg "main" "entry" (Chain.End_branch "a") ])

let test_chain_zero_arm_learns () =
  (* Taking the zero arm with an unknown condition records cond = 0; a
     later branch on the same register is then decided. *)
  let prog =
    parse
      {|
func main(r0) {
entry:
  br r0, a, b
a:
  halt
b:
  br r0, c, d
c:
  halt
d:
  halt
}
|}
  in
  let q = mk_query prog in
  check refuted "r0 learned 0 in entry forces d in b" (Some "")
    (Chain.refute q
       [
         seg "main" "entry" (Chain.End_branch "b");
         seg "main" "b" (Chain.End_branch "c");
       ]);
  check refuted "consistent zero-arm chain survives" None
    (Chain.refute q
       [
         seg "main" "entry" (Chain.End_branch "b");
         seg "main" "b" (Chain.End_branch "d");
       ])

let test_chain_trap_contradictions () =
  let prog =
    parse
      {|
func main() {
entry:
  r0 = const 0
  assert r0, "boom"
  jmp next
next:
  halt
}
|}
  in
  check refuted "completing past assert(0) is impossible" (Some "")
    (Chain.refute (mk_query prog)
       [ seg "main" "entry" (Chain.End_branch "next") ]);
  let div =
    parse
      {|
func main() {
entry:
  r0 = const 0
  r1 = const 8
  r2 = div r1, r0
  jmp next
next:
  halt
}
|}
  in
  check refuted "completing past a zero divisor is impossible" (Some "")
    (Chain.refute (mk_query div)
       [ seg "main" "entry" (Chain.End_branch "next") ])

let test_chain_store_vs_snapshot () =
  let prog =
    parse
      {|
global g 1

func main() {
entry:
  r0 = global g
  r1 = const 7
  store r0[0] = r1
  jmp next
next:
  halt
}
|}
  in
  let post_mem v a = if a = 4096 then Some v else None in
  check refuted "final store 7 vs snapshot 9 is impossible" (Some "")
    (Chain.refute
       (mk_query ~post_mem:(post_mem 9) prog)
       [ seg "main" "entry" (Chain.End_branch "next") ]);
  check refuted "final store 7 vs snapshot 7 is consistent" None
    (Chain.refute
       (mk_query ~post_mem:(post_mem 7) prog)
       [ seg "main" "entry" (Chain.End_branch "next") ])

let test_chain_goal_and_relaxation () =
  let prog =
    parse
      {|
func main() {
entry:
  r0 = const 5
  jmp next
next:
  halt
}
|}
  in
  let goal n r = if r = 0 then Chain.Known n else Chain.Top in
  let chain =
    [
      seg "main" "entry" (Chain.End_branch "next");
      seg "main" "next" (Chain.End_stop 0);
    ]
  in
  check refuted "chain forces r0=5 but the coredump frame holds 3" (Some "")
    (Chain.refute (mk_query ~goal:(goal 3) prog) chain);
  check refuted "matching goal survives" None
    (Chain.refute (mk_query ~goal:(goal 5) prog) chain);
  check refuted "a relaxed register imposes no goal" None
    (Chain.refute
       (mk_query ~goal:(goal 3) ~relaxed:(Chain.ISet.singleton 0) prog)
       chain);
  (* The goal only binds when the chain actually ends at the stop frame. *)
  check refuted "no goal check for a terminal chain" None
    (Chain.refute
       (mk_query ~goal:(goal 3) prog)
       [ seg "main" "entry" (Chain.End_branch "next") ])

let test_chain_seeds_from_post_frame () =
  (* A register the candidate block does not define reads as its
     post-state value. *)
  let prog =
    parse
      {|
func main(r0) {
entry:
  br r0, a, b
a:
  halt
b:
  halt
}
|}
  in
  let seed n r = if r = 0 then Chain.Known n else Chain.Top in
  check refuted "seed r0=0 cannot take the nonzero arm" (Some "")
    (Chain.refute
       (mk_query ~seed:(seed 0) prog)
       [ seg "main" "entry" (Chain.End_branch "a") ]);
  check refuted "seed r0=0 takes the zero arm" None
    (Chain.refute
       (mk_query ~seed:(seed 0) prog)
       [ seg "main" "entry" (Chain.End_branch "b") ])

let test_chain_call_clobbers () =
  (* The candidate's store fact must not survive a call that may write
     the cell: no refutation even though the snapshot disagrees. *)
  let prog =
    parse
      {|
global g 1

func main() {
entry:
  r0 = global g
  r1 = const 7
  store r0[0] = r1
  r2 = call smash()
  jmp next
next:
  halt
}

func smash() {
entry:
  r0 = global g
  r9 = const 1
  store r0[0] = r9
  ret r9
}
|}
  in
  check refuted "call clobbers the store fact: no refutation" None
    (Chain.refute
       (mk_query ~post_mem:(fun a -> if a = 4096 then Some 9 else None) prog)
       [ seg "main" "entry" (Chain.End_branch "next") ])

(* --- pruning never changes the reports (the soundness property) --- *)

let test_prune_equivalence_all_workloads () =
  let s = Res_faultinject.Faultinject.prune_equivalence_campaign () in
  List.iter
    (fun r ->
      Alcotest.failf "prune equivalence violated: %a"
        (fun ppf -> Res_faultinject.Faultinject.pp_pe_run ppf)
        r)
    s.Res_faultinject.Faultinject.pe_failures;
  check int_t "all workloads bit-identical"
    s.Res_faultinject.Faultinject.pe_total s.Res_faultinject.Faultinject.pe_ok

let test_prune_reduces_long_exec () =
  (* E14 acceptance: >= 30% fewer backward-step evaluations on the
     long-execution workload. *)
  let r =
    Res_faultinject.Faultinject.prune_equivalence_one
      (Res_workloads.Workloads.find "long-exec-50")
  in
  check bool_t "long-exec reports unchanged" true
    r.Res_faultinject.Faultinject.pe_equivalent;
  let on = r.Res_faultinject.Faultinject.pe_nodes_on in
  let off = r.Res_faultinject.Faultinject.pe_nodes_off in
  if not (on * 10 <= off * 7) then
    Alcotest.failf "expected >=30%% node reduction, got %d -> %d" off on

(* --- the invertibility classifier --- *)

let loop_src =
  {|
global g 1

func main(r0) {
entry:
  jmp loop
loop:
  r1 = global g
  r2 = load r1[0]
  r3 = const 1
  r4 = add r2, r3
  store r1[0] = r4
  r5 = sub r0, r3
  r0 = mov r5
  br r0, loop, done
done:
  halt
}
|}

let classify_block ?(func = "main") ~block src =
  let prog = parse src in
  let summary = Summary.of_prog prog in
  Invert.classify ~summary (Res_ir.Prog.block prog ~func ~label:block)

let check_invertible name v =
  match v with
  | Invert.Invertible _ -> ()
  | Invert.Not_invertible e -> Alcotest.failf "%s: unexpectedly rejected: %s" name e

let contains_substr ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check_barrier name ~substr v =
  match v with
  | Invert.Invertible _ -> Alcotest.failf "%s: unexpectedly invertible" name
  | Invert.Not_invertible e ->
      check bool_t (Fmt.str "%s: reason mentions %S (got %S)" name substr e)
        true (contains_substr ~sub:substr e)

let test_invert_classifier_classes () =
  check_invertible "pure arithmetic + load/store loop body"
    (classify_block ~block:"loop" loop_src);
  let wrap body term =
    Fmt.str {|
global g 1

func callee(r9) {
entry:
  r8 = const 1
  store r9[0] = r8
  ret
}

func main(r0) {
entry:
  %s
  %s
next:
  halt
}
|} body term
  in
  check_barrier "input is non-deterministic" ~substr:"input"
    (classify_block ~block:"entry" (wrap "r1 = input net" "jmp next"));
  check_barrier "unresolved call target" ~substr:"unresolved"
    (classify_block ~block:"entry" (wrap "r1 = global g\ncall callee(r1)" "jmp next"));
  check_barrier "spawn creates a thread" ~substr:"spawn"
    (classify_block ~block:"entry" (wrap "r1 = spawn callee(r0)" "jmp next"));
  check_barrier "alloc mutates the heap" ~substr:"alloc"
    (classify_block ~block:"entry" (wrap "r1 = const 4\nr2 = alloc r1" "jmp next"));
  check_barrier "lock is a synchronization point" ~substr:"lock"
    (classify_block ~block:"entry" (wrap "r1 = global g\nlock r1" "jmp next"));
  check_barrier "ret leaves the frame" ~substr:"ret"
    (classify_block ~block:"entry" (wrap "r1 = const 0" "ret"));
  check_barrier "halt ends the thread" ~substr:"halt"
    (classify_block ~block:"done" loop_src)

(* --- the concrete reverse engine --- *)

(* Forward truth for [loop_src]'s loop body: entry r0 = 5, g[0] = 7
   steps to exit r0 = 4, g[0] = 8, branching back to [loop]. *)
let g_base = 4096

let loop_oracle ?(post_reg = fun _ -> Revexec.P_sym) ?(target = "loop") () =
  {
    Revexec.post_reg;
    read_post = (fun a -> if a = g_base then Some 8 else None);
    is_mapped = (fun a -> a = g_base);
    global_base = (fun g -> if String.equal g "g" then Some g_base else None);
    require_target = target;
    regs = [ 0; 1; 2; 3; 4; 5 ];
  }

let loop_plan () =
  match classify_block ~block:"loop" loop_src with
  | Invert.Invertible plan -> plan
  | Invert.Not_invertible e -> Alcotest.failf "loop body rejected: %s" e

let loop_block () =
  Res_ir.Prog.block (parse loop_src) ~func:"main" ~label:"loop"

let concrete_posts r =
  (* the full concrete post frame the first backward step sees *)
  List.assoc_opt r [ (0, 4); (1, g_base); (2, 7); (3, 1); (4, 8); (5, 4) ]

let test_revexec_recovers_pre_state () =
  let post_reg r =
    match concrete_posts r with
    | Some v -> Revexec.P_val v
    | None -> Revexec.P_sym
  in
  match Revexec.run (loop_block ()) (loop_plan ()) (loop_oracle ~post_reg ()) with
  | Revexec.Reversed rs ->
      check int_t "entry r0 recovered" 5
        (Revexec.IMap.find 0 rs.Revexec.rs_entry_regs);
      check bool_t "pre g[0] recovered" true
        (rs.Revexec.rs_pre_mem = [ (g_base, 7) ]);
      check bool_t "write set is the cell" true (rs.Revexec.rs_writes = [ g_base ]);
      check string_t "branches back into the loop" "loop" rs.Revexec.rs_target
  | Revexec.Infeasible e -> Alcotest.failf "infeasible: %s" e
  | Revexec.Unknown e -> Alcotest.failf "unknown: %s" e

let test_revexec_chains_through_wildcards () =
  (* After one reverse step the non-live defined registers hold free
     symbols; only r0 (the live-in) stays concrete.  The rigid pass must
     still resolve the store address and the walk must still pin r0. *)
  let post_reg r = if r = 0 then Revexec.P_val 4 else Revexec.P_free in
  match Revexec.run (loop_block ()) (loop_plan ()) (loop_oracle ~post_reg ()) with
  | Revexec.Reversed rs ->
      check int_t "entry r0 recovered through wildcards" 5
        (Revexec.IMap.find 0 rs.Revexec.rs_entry_regs);
      check bool_t "pre g[0] recovered through wildcards" true
        (rs.Revexec.rs_pre_mem = [ (g_base, 7) ])
  | Revexec.Infeasible e -> Alcotest.failf "infeasible: %s" e
  | Revexec.Unknown e -> Alcotest.failf "unknown: %s" e

let test_revexec_proves_infeasible () =
  (* r0 = 4 at the block's end takes the loop arm; a candidate that must
     land on [done] has no pre-state.  Likewise a post value the block
     text contradicts (r3 must be const 1). *)
  let post_reg r = if r = 0 then Revexec.P_val 4 else Revexec.P_free in
  (match
     Revexec.run (loop_block ()) (loop_plan ())
       (loop_oracle ~post_reg ~target:"done" ())
   with
  | Revexec.Infeasible _ -> ()
  | Revexec.Reversed _ -> Alcotest.fail "wrong-target candidate reversed"
  | Revexec.Unknown e -> Alcotest.failf "expected infeasible, got unknown: %s" e);
  let post_reg r =
    if r = 3 then Revexec.P_val 2
    else if r = 0 then Revexec.P_val 4
    else Revexec.P_free
  in
  match Revexec.run (loop_block ()) (loop_plan ()) (loop_oracle ~post_reg ()) with
  | Revexec.Infeasible _ -> ()
  | Revexec.Reversed _ -> Alcotest.fail "contradicted const reversed"
  | Revexec.Unknown e -> Alcotest.failf "expected infeasible, got unknown: %s" e

let test_revexec_falls_back_on_symbolic_state () =
  (* A defined register whose post value other constraints may force
     ([P_sym]) cannot be checked concretely; neither can a wildcard
     branch register, nor a wildcard carried live-in (the symbolic path
     would force that symbol through its compatibility equality, so
     guessing a value would diverge from it). *)
  let post_reg r = if r = 0 then Revexec.P_val 4 else Revexec.P_sym in
  (match Revexec.run (loop_block ()) (loop_plan ()) (loop_oracle ~post_reg ()) with
  | Revexec.Unknown _ -> ()
  | Revexec.Reversed _ | Revexec.Infeasible _ ->
      Alcotest.fail "P_sym defined register must fall back");
  let post_reg r =
    if r = 0 then Revexec.P_free
    else match concrete_posts r with
      | Some v -> Revexec.P_val v
      | None -> Revexec.P_free
  in
  (match Revexec.run (loop_block ()) (loop_plan ()) (loop_oracle ~post_reg ()) with
  | Revexec.Unknown _ -> ()
  | Revexec.Reversed _ | Revexec.Infeasible _ ->
      Alcotest.fail "wildcard branch register must fall back");
  let carried_src =
    {|
global g 1

func main(r0) {
entry:
  jmp loop
loop:
  r2 = load r1[0]
  br r0, loop, done
done:
  halt
}
|}
  in
  let prog = parse carried_src in
  let block = Res_ir.Prog.block prog ~func:"main" ~label:"loop" in
  let plan =
    match classify_block ~block:"loop" carried_src with
    | Invert.Invertible plan -> plan
    | Invert.Not_invertible e -> Alcotest.failf "rejected: %s" e
  in
  let post_reg r =
    if r = 1 then Revexec.P_free
    else if r = 0 then Revexec.P_val 1
    else Revexec.P_val 8
  in
  match
    Revexec.run block plan
      { (loop_oracle ~post_reg ()) with Revexec.regs = [ 0; 1; 2 ] }
  with
  | Revexec.Unknown _ -> ()
  | Revexec.Reversed _ | Revexec.Infeasible _ ->
      Alcotest.fail "wildcard carried live-in must fall back"

let test_revexec_self_clobbering_load_falls_back () =
  let src =
    {|
global g 1

func main(r0) {
entry:
  jmp loop
loop:
  r1 = global g
  r1 = load r1[0]
  br r0, loop, done
done:
  halt
}
|}
  in
  let prog = parse src in
  let block = Res_ir.Prog.block prog ~func:"main" ~label:"loop" in
  let plan =
    match classify_block ~block:"loop" src with
    | Invert.Invertible plan -> plan
    | Invert.Not_invertible e -> Alcotest.failf "rejected: %s" e
  in
  let post_reg r =
    if r = 0 then Revexec.P_val 1
    else if r = 1 then Revexec.P_val 8
    else Revexec.P_sym
  in
  match
    Revexec.run block plan
      { (loop_oracle ~post_reg ()) with Revexec.regs = [ 0; 1 ] }
  with
  | Revexec.Unknown _ -> ()
  | Revexec.Reversed _ | Revexec.Infeasible _ ->
      Alcotest.fail "a load clobbering its own address register must fall back"

(* --- reverse execution never changes the reports --- *)

let test_reverse_equivalence_all_workloads () =
  let s = Res_faultinject.Faultinject.reverse_equivalence_campaign () in
  List.iter
    (fun r ->
      Alcotest.failf "reverse equivalence violated: %a"
        (fun ppf -> Res_faultinject.Faultinject.pp_re_run ppf)
        r)
    s.Res_faultinject.Faultinject.re_failures;
  check int_t "all workloads bit-identical"
    s.Res_faultinject.Faultinject.re_total s.Res_faultinject.Faultinject.re_ok

let test_reverse_reduces_long_exec_queries () =
  (* E19 acceptance: >= 2x fewer solver queries on the long-execution
     workload when the fast path is on. *)
  let r =
    Res_faultinject.Faultinject.reverse_equivalence_one
      (Res_workloads.Workloads.find "long-exec-50")
  in
  check bool_t "long-exec reports unchanged" true
    r.Res_faultinject.Faultinject.re_equivalent;
  check bool_t "fast path actually fired" true
    (r.Res_faultinject.Faultinject.re_reversed > 0);
  let q_on = r.Res_faultinject.Faultinject.re_queries_on in
  let q_off = r.Res_faultinject.Faultinject.re_queries_off in
  if not (q_on * 2 <= q_off) then
    Alcotest.failf "expected >=2x fewer solver queries, got %d -> %d" q_off q_on

(* --- the lint suite against the workload corpus's ground truth --- *)

let findings_of w =
  Lint.run (w : Res_workloads.Truth.t).Res_workloads.Truth.w_prog

let contains_substr ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let has_finding fs ~chk ~substr =
  List.exists
    (fun f ->
      String.equal f.Lint.f_check chk
      && contains_substr ~sub:substr f.Lint.f_msg)
    fs

let test_lint_flags_seeded_bugs () =
  let race = findings_of (Res_workloads.Workloads.find "counter-race") in
  check bool_t "counter-race: race on counter[0] flagged" true
    (has_finding race ~chk:"race" ~substr:"counter[0]");
  let kv = findings_of (Res_workloads.Workloads.find "kvstore-stats-race") in
  check bool_t "kvstore-stats-race: race on size[0] flagged" true
    (has_finding kv ~chk:"race" ~substr:"size[0]");
  let dl = findings_of (Res_workloads.Workloads.find "lock-order-deadlock") in
  check bool_t "lock-order-deadlock: opposite-order cycle flagged" true
    (has_finding dl ~chk:"deadlock" ~substr:"opposite orders")

let test_lint_zero_false_positives () =
  let buggy =
    [ "counter-race"; "kvstore-stats-race"; "lock-order-deadlock" ]
  in
  List.iter
    (fun (w : Res_workloads.Truth.t) ->
      if not (List.mem w.Res_workloads.Truth.w_name buggy) then
        match findings_of w with
        | [] -> ()
        | fs ->
            Alcotest.failf "%s: unexpected findings:@.%a"
              w.Res_workloads.Truth.w_name
              Fmt.(list ~sep:cut (fun ppf f -> Fmt.string ppf (Lint.to_line f)))
              fs)
    Res_workloads.Workloads.all

let test_lint_locked_counter_control () =
  (* The properly-locked variant of the racy counter: same sharing, but
     every access holds the mutex — the race check must stay silent. *)
  let src =
    {|
global counter 1
global m 1

func main() {
entry:
  r0 = spawn worker()
  r1 = spawn worker()
  join r0
  join r1
  halt
}

func worker() {
entry:
  r5 = global m
  lock r5
  r0 = global counter
  r1 = load r0[0]
  r2 = const 1
  r3 = add r1, r2
  store r0[0] = r3
  unlock r5
  ret
}
|}
  in
  check int_t "locked counter lints clean" 0
    (Lint.exit_code (Lint.run (parse src)))

let test_lint_synthetic_warnings () =
  let dead =
    parse
      {|
global g 1

func main() {
entry:
  r0 = global g
  r1 = const 1
  store r0[0] = r1
  r2 = const 2
  store r0[0] = r2
  r3 = load r0[0]
  halt
}
|}
  in
  let fs = Lint.run dead in
  check bool_t "overwritten store flagged dead" true
    (List.exists (fun f -> f.Lint.f_check = "dead-store") fs);
  check int_t "warnings exit 2" 2 (Lint.exit_code fs);
  let unreachable =
    parse {|
func main() {
entry:
  halt
orphan:
  halt
}
|}
  in
  check bool_t "orphan block flagged unreachable" true
    (List.exists
       (fun f -> f.Lint.f_check = "unreachable")
       (Lint.run unreachable));
  let leak =
    parse
      {|
global m 1

func main() {
entry:
  r0 = global m
  lock r0
  halt
}
|}
  in
  check bool_t "unreleased lock flagged" true
    (List.exists (fun f -> f.Lint.f_check = "lock-leak") (Lint.run leak))

let test_lint_validator_errors () =
  (* A malformed program: validator findings are errors (exit 3) and
     suppress the structural checks. *)
  let bad = parse {|
func main(r0) {
entry:
  br r0, entry, entry
}
|} in
  let fs = Lint.run bad in
  check bool_t "validator error surfaces as a finding" true
    (List.exists
       (fun f -> f.Lint.f_check = "validate" && f.Lint.f_severity = Lint.Error)
       fs);
  check int_t "errors exit 3" 3 (Lint.exit_code fs)

let () =
  Alcotest.run "static"
    [
      ( "summary",
        [
          Alcotest.test_case "transitive mod/ref through calls" `Quick
            test_summary_transitive;
          Alcotest.test_case "block summary absorbs callees" `Quick
            test_summary_block_sum;
          Alcotest.test_case "recursion converges" `Quick
            test_summary_recursion_converges;
          Alcotest.test_case "unresolved access flags unknown" `Quick
            test_summary_unresolved_is_unknown;
        ] );
      ( "dom",
        [
          Alcotest.test_case "dominators of a diamond" `Quick test_dominators;
          Alcotest.test_case "postdominators of a diamond" `Quick
            test_postdominators;
        ] );
      ( "reach",
        [
          Alcotest.test_case "def-clear paths" `Quick
            test_reach_def_clear_paths;
          Alcotest.test_case "observable-after" `Quick test_reach_observable;
          Alcotest.test_case "def-clear block entry/exit edges" `Quick
            test_reach_def_clear_between_edges;
        ] );
      ( "chain",
        [
          Alcotest.test_case "branch contradiction" `Quick
            test_chain_branch_contradiction;
          Alcotest.test_case "zero-arm learns cond = 0" `Quick
            test_chain_zero_arm_learns;
          Alcotest.test_case "assert and division traps" `Quick
            test_chain_trap_contradictions;
          Alcotest.test_case "final stores vs snapshot" `Quick
            test_chain_store_vs_snapshot;
          Alcotest.test_case "goal pinning and relaxation" `Quick
            test_chain_goal_and_relaxation;
          Alcotest.test_case "seeds from the post frame" `Quick
            test_chain_seeds_from_post_frame;
          Alcotest.test_case "calls clobber store facts" `Quick
            test_chain_call_clobbers;
        ] );
      ( "prune",
        [
          Alcotest.test_case "reports identical on all workloads" `Quick
            test_prune_equivalence_all_workloads;
          Alcotest.test_case "long-exec explores >=30% fewer nodes" `Quick
            test_prune_reduces_long_exec;
        ] );
      ( "invert",
        [
          Alcotest.test_case "per-instruction-class verdicts" `Quick
            test_invert_classifier_classes;
        ] );
      ( "revexec",
        [
          Alcotest.test_case "recovers the unique pre-state" `Quick
            test_revexec_recovers_pre_state;
          Alcotest.test_case "chains through free wildcards" `Quick
            test_revexec_chains_through_wildcards;
          Alcotest.test_case "proves infeasibility without the solver" `Quick
            test_revexec_proves_infeasible;
          Alcotest.test_case "falls back on symbolic state" `Quick
            test_revexec_falls_back_on_symbolic_state;
          Alcotest.test_case "self-clobbering load falls back" `Quick
            test_revexec_self_clobbering_load_falls_back;
        ] );
      ( "reverse",
        [
          Alcotest.test_case "reports identical on all workloads" `Quick
            test_reverse_equivalence_all_workloads;
          Alcotest.test_case "long-exec needs >=2x fewer solver queries" `Quick
            test_reverse_reduces_long_exec_queries;
        ] );
      ( "lint",
        [
          Alcotest.test_case "seeded races and deadlock flagged" `Quick
            test_lint_flags_seeded_bugs;
          Alcotest.test_case "zero false positives on the corpus" `Quick
            test_lint_zero_false_positives;
          Alcotest.test_case "locked counter control is clean" `Quick
            test_lint_locked_counter_control;
          Alcotest.test_case "dead store, unreachable, lock leak" `Quick
            test_lint_synthetic_warnings;
          Alcotest.test_case "validator errors surface" `Quick
            test_lint_validator_errors;
        ] );
    ]
