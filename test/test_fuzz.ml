(* The structured fuzzer itself: a deterministic instrument has to be
   tested like one.  Same seed must mean the same byte stream, the same
   accept/reject decisions, and the same digest; a different seed must
   actually explore differently; a bounded run over every sealed codec
   and text grammar must find zero violations (the codecs are the
   hardened product — the fuzzer holding them to it is the regression
   test); and the shrinker must reduce a crashing input to its minimal
   core, because an unshrunk reproducer is barely a reproducer. *)

module Fuzz = Res_fuzz.Fuzz
module Sealing = Res_core.Sealing

let digests (r : Fuzz.report) =
  List.map (fun f -> (f.Fuzz.fr_name, f.Fuzz.fr_digest)) r.Fuzz.r_formats

let decisions (r : Fuzz.report) =
  List.map
    (fun f -> (f.Fuzz.fr_name, f.Fuzz.fr_accepted, f.Fuzz.fr_rejected))
    r.Fuzz.r_formats

let test_same_seed_same_stream () =
  let a = Fuzz.run ~seed:42 ~runs:100 () in
  let b = Fuzz.run ~seed:42 ~runs:100 () in
  Alcotest.(check (list (pair string string)))
    "same seed, same per-format digests" (digests a) (digests b);
  Alcotest.(check (list (triple string int int)))
    "same accept/reject counts" (decisions a) (decisions b)

let test_different_seed_different_stream () =
  let a = Fuzz.run ~seed:1 ~runs:100 () in
  let b = Fuzz.run ~seed:2 ~runs:100 () in
  Alcotest.(check bool)
    "different seeds explore different cases" false
    (List.equal
       (fun (n1, d1) (n2, d2) -> String.equal n1 n2 && String.equal d1 d2)
       (digests a) (digests b))

let test_bounded_run_zero_violations () =
  let r = Fuzz.run ~seed:7 ~runs:300 () in
  List.iter
    (fun f ->
      List.iter
        (fun fd ->
          Alcotest.failf "%s case %d: %a" f.Fuzz.fr_name fd.Fuzz.fd_case
            Fuzz.pp_violation fd.Fuzz.fd_violation)
        f.Fuzz.fr_findings)
    r.Fuzz.r_formats;
  Alcotest.(check int) "zero violations" 0 (Fuzz.total_findings r);
  Alcotest.(check int) "all formats covered"
    (List.length Fuzz.format_names)
    (List.length r.Fuzz.r_formats)

let test_unknown_format_rejected () =
  Alcotest.check_raises "unknown format is an argument error"
    (Invalid_argument "Fuzz.run: no such format") (fun () ->
      ignore (Fuzz.run ~only:[ "no-such-codec" ] ~seed:1 ~runs:1 ()))

(* A decoder that crashes whenever the poison byte is present: the
   shrinker must strip everything else and hand back just the poison. *)
let test_shrinker_minimizes () =
  let fmt =
    {
      Fuzz.f_name = "poison";
      f_sealed = false;
      f_seeds = [];
      f_hostile = [];
      f_decode = (fun s -> if String.contains s 'X' then failwith "boom" else true);
    }
  in
  let noisy = String.make 200 'a' ^ "X" ^ String.make 200 'b' in
  (match Fuzz.run_case fmt noisy with
  | Error (Fuzz.Uncaught _ as kind) ->
      Alcotest.(check string)
        "shrunk to the single poison byte" "X"
        (Fuzz.shrink fmt kind noisy)
  | _ -> Alcotest.fail "poison input must raise");
  (* silent-accepts are never shrunk: the damaged bytes ARE the story *)
  Alcotest.(check string)
    "silent-accept reproducers are kept whole" noisy
    (Fuzz.shrink fmt Fuzz.Silent_accept noisy)

(* The shared bounded-count gate every length-prefixed decode site
   routes through: negatives and inflated counts must be refused before
   any allocation is attempted. *)
let test_bounded_counts () =
  Alcotest.(check (option string)) "zero is fine" None
    (Sealing.count_error ~what:"row" 0);
  Alcotest.(check (option string)) "the cap itself is fine" None
    (Sealing.count_error ~what:"row" Sealing.max_count);
  Alcotest.(check bool) "negative count refused" true
    (Sealing.count_error ~what:"row" (-1) <> None);
  Alcotest.(check bool) "inflated count refused" true
    (Sealing.count_error ~what:"row" (Sealing.max_count + 1) <> None);
  Alcotest.check_raises "check_count raises the codec's typed error"
    (Res_vm.Coredump_io.Bad_format "negative row count -3") (fun () ->
      ignore (Sealing.check_count ~what:"row" (-3)))

(* A sealed artifact whose payload announces more items than the bytes
   carry — resealed so the envelope is valid and the decoder proper has
   to defend itself.  This is the checkpoint hostile the fuzzer throws;
   assert the exact typed outcome here so a regression names itself. *)
let test_inflated_count_is_typed_error () =
  let r = List.hd (Res_workloads.Corpus.generate ~n_per_bug:1 ()) in
  let pristine =
    Res_persist.Checkpoint.to_string
      {
        Res_persist.Checkpoint.config = Res_core.Res.default_config;
        prog = r.Res_workloads.Corpus.r_prog;
        dump = r.Res_workloads.Corpus.r_dump;
        state = Res_core.Res.initial_state Res_core.Res.default_config;
      }
  in
  Alcotest.(check bool) "pristine checkpoint round-trips" true
    (match Res_persist.Checkpoint.of_string pristine with
    | Ok _ -> true
    | Error _ -> false);
  let inflated =
    Fuzz.tamper ~header:"rescheckpoint v3"
      (fun payload ->
        Fuzz.replace_first ~marker:"suffixes 0" ~sub:"suffixes 999999" payload)
      pristine
  in
  Alcotest.(check bool) "tamper produced a distinct artifact" false
    (String.equal inflated pristine);
  match Res_persist.Checkpoint.of_string inflated with
  | Ok _ -> Alcotest.fail "inflated suffix count must not decode"
  | Error _ -> ()

let () =
  Alcotest.run "fuzz"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed, same digests" `Quick
            test_same_seed_same_stream;
          Alcotest.test_case "different seed, different stream" `Quick
            test_different_seed_different_stream;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "bounded run finds zero violations" `Slow
            test_bounded_run_zero_violations;
          Alcotest.test_case "unknown format is refused" `Quick
            test_unknown_format_rejected;
          Alcotest.test_case "shrinker reduces to the minimal core" `Quick
            test_shrinker_minimizes;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "bounded-count gate" `Quick test_bounded_counts;
          Alcotest.test_case "inflated count is a typed error" `Quick
            test_inflated_count_is_typed_error;
        ] );
    ]
