(* Parallel engine: pool behaviour, wire round-trips, and the headline
   property — parallel results byte-identical to serial for any worker
   count, on both backends, plus deterministic batch triage.

   Suite ordering is load-bearing: the OCaml runtime forbids Unix.fork
   once any domain has been spawned, so every fork-backend test runs
   before the first domains-backend test (Pool enforces this with a clear
   error; these suites are arranged to respect it). *)

module Pool = Res_parallel.Pool
module Wire = Res_parallel.Wire
module Engine = Res_parallel.Engine
module Batch = Res_parallel.Batch

let serial_body (w : Res_workloads.Truth.t) =
  Res_solver.Expr.reset_counter_for_tests ();
  let dump = Res_workloads.Truth.coredump w in
  let ctx = Res_core.Backstep.make_ctx w.Res_workloads.Truth.w_prog in
  let outcome = Res_core.Res.analyze ctx dump in
  ( Res_core.Report.report_list_to_string ctx (Res_core.Res.analysis outcome),
    Res_core.Res.outcome_name outcome )

let parallel_body ?ckpt_dir ?kill_unit ?shard_depth ~jobs ~backend
    (w : Res_workloads.Truth.t) =
  Res_solver.Expr.reset_counter_for_tests ();
  let dump = Res_workloads.Truth.coredump w in
  let prog = w.Res_workloads.Truth.w_prog in
  let ctx = Res_core.Backstep.make_ctx prog in
  let outcome, stats =
    Engine.analyze ~jobs ~backend ?ckpt_dir ?kill_unit ?shard_depth ~prog ctx
      dump
  in
  ( Res_core.Report.report_list_to_string ctx (Res_core.Res.analysis outcome),
    Res_core.Res.outcome_name outcome,
    stats )

let check_equivalent ?shard_depth ~jobs ~backend (w : Res_workloads.Truth.t) =
  let body, outcome = serial_body w in
  let body', outcome', _ = parallel_body ?shard_depth ~jobs ~backend w in
  Alcotest.(check string)
    (Fmt.str "%s -j %d (%s) outcome" w.Res_workloads.Truth.w_name jobs
       (Pool.backend_name backend))
    outcome outcome';
  Alcotest.(check string)
    (Fmt.str "%s -j %d (%s) report bodies" w.Res_workloads.Truth.w_name jobs
       (Pool.backend_name backend))
    body body'

(* --- pool: fork phase ----------------------------------------------- *)

let test_pool_order_fork () =
  let worker () = fun s -> "r:" ^ s in
  let units = List.init 13 (fun i -> Fmt.str "u%d" i) in
  let replies, stats = Pool.run ~backend:Pool.Forked ~jobs:4 ~worker units in
  Alcotest.(check (list (option string)))
    "replies in request order"
    (List.map (fun u -> Some ("r:" ^ u)) units)
    replies;
  Alcotest.(check int) "no lost units" 0 stats.Pool.p_lost

let test_pool_worker_exception_fork () =
  (* A deterministic per-unit exception is a permanent failure: the unit
     reads back as None and is NOT retried (same input, same crash). *)
  let worker () = fun s -> if s = "boom" then failwith "boom" else s in
  let replies, stats =
    Pool.run ~backend:Pool.Forked ~jobs:2 ~worker [ "a"; "boom"; "b" ]
  in
  Alcotest.(check (list (option string)))
    "exception -> None"
    [ Some "a"; None; Some "b" ] replies;
  Alcotest.(check int) "counted lost" 1 stats.Pool.p_lost;
  Alcotest.(check int) "not retried" 0 stats.Pool.p_retries

let test_pool_kill_reschedules () =
  (* SIGKILL a forked worker mid-unit: the coordinator must detect the
     death, respawn, and re-run the unit — every reply present. *)
  let worker () =
   fun s ->
    if s = "slow" then Unix.sleepf 0.3;
    "r:" ^ s
  in
  let units = [ "a"; "slow"; "b"; "c" ] in
  let replies, stats =
    Pool.run ~backend:Pool.Forked ~jobs:2 ~kill_unit:1 ~worker units
  in
  Alcotest.(check (list (option string)))
    "all units answered despite the kill"
    (List.map (fun u -> Some ("r:" ^ u)) units)
    replies;
  Alcotest.(check bool) "unit was rescheduled" true (stats.Pool.p_retries >= 1);
  Alcotest.(check int) "nothing lost" 0 stats.Pool.p_lost

(* --- wire (no pool) ------------------------------------------------- *)

(* Harvest a real frontier from a real workload so the round-trip
   exercises genuine snapshots, not toy values. *)
let some_shards () =
  let w = Res_workloads.Workloads.find "counter-race" in
  let dump = Res_workloads.Truth.coredump w in
  let ctx = Res_core.Backstep.make_ctx w.Res_workloads.Truth.w_prog in
  let config =
    { Res_core.Search.default_config with Res_core.Search.max_segments = 3 }
  in
  let r = Res_core.Search.search ~config ~shard_at:1 ctx dump in
  (config, r.Res_core.Search.shards, r.Res_core.Search.suffixes)

let test_wire_roundtrip () =
  let config, shards, suffixes = some_shards () in
  Alcotest.(check bool) "harvested shards" true (shards <> []);
  let suspended =
    {
      Res_core.Search.s_frontier = shards;
      s_nodes = 7;
      s_candidates = 9;
      s_feasible = 4;
      s_emitted = 2;
      s_pruned = 1;
      s_reversed = 6;
      s_slice_skipped = 3;
      s_next_id = 42;
      s_out = suffixes;
    }
  in
  let u =
    {
      Wire.u_index = 3;
      u_config = config;
      u_fuel = Some 500;
      u_wall_ms = None;
      u_restore = Some 17;
      u_suspended = suspended;
    }
  in
  let enc = Wire.encode_unit u in
  (match Wire.decode_unit enc with
  | Error m -> Alcotest.failf "unit decode failed: %s" m
  | Ok u' ->
      Alcotest.(check string) "unit re-encodes identically" enc
        (Wire.encode_unit u'));
  let res =
    {
      Wire.r_index = 3;
      r_complete = true;
      r_exhausted = Some Res_core.Budget.Fuel;
      r_nodes = 11;
      r_candidates = 13;
      r_feasible = 5;
      r_emitted = 2;
      r_pruned = 0;
      r_reversed = 4;
      r_slice_skipped = 1;
      r_queries = 21;
      r_suffixes = suffixes;
    }
  in
  let enc = Wire.encode_result res in
  (match Wire.decode_result enc with
  | Error m -> Alcotest.failf "result decode failed: %s" m
  | Ok r' ->
      Alcotest.(check string) "result re-encodes identically" enc
        (Wire.encode_result r'));
  let ck = { Wire.c_expr_counter = 99; c_suspended = suspended } in
  let enc = Wire.encode_unit_ckpt ck in
  (match Wire.decode_unit_ckpt enc with
  | Error m -> Alcotest.failf "ckpt decode failed: %s" m
  | Ok c' ->
      Alcotest.(check string) "ckpt re-encodes identically" enc
        (Wire.encode_unit_ckpt c'));
  let b =
    {
      Wire.b_index = 5;
      b_outcome = "complete";
      b_bucket = "race sig";
      b_cause = "write/write race on x";
      b_nodes = 40;
      b_pruned = 3;
      b_queries = 12;
    }
  in
  match Wire.decode_batch (Wire.encode_batch b) with
  | Error m -> Alcotest.failf "batch decode failed: %s" m
  | Ok b' ->
      Alcotest.(check string) "batch re-encodes identically"
        (Wire.encode_batch b) (Wire.encode_batch b')

let test_wire_rejects_corrupt () =
  let config, shards, _ = some_shards () in
  let u =
    {
      Wire.u_index = 0;
      u_config = config;
      u_fuel = None;
      u_wall_ms = None;
      u_restore = None;
      u_suspended =
        {
          Res_core.Search.s_frontier = shards;
          s_nodes = 0;
          s_candidates = 0;
          s_feasible = 0;
          s_emitted = 0;
          s_pruned = 0;
          s_reversed = 0;
          s_slice_skipped = 0;
          s_next_id = 0;
          s_out = [];
        };
    }
  in
  let enc = Wire.encode_unit u in
  let flipped = Bytes.of_string enc in
  Bytes.set flipped (String.length enc / 2) '\255';
  (match Wire.decode_unit (Bytes.to_string flipped) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt unit must not decode");
  match Wire.decode_result enc with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong header must not decode"

(* --- equivalence: fork phase ---------------------------------------- *)

let test_equivalence_fork () =
  List.iter
    (fun w ->
      check_equivalent ~jobs:2 ~backend:Pool.Forked w;
      (* shard_depth 1 forces every workload through the farm/merge path
         (at depth 2 the shallow ones never shard) *)
      check_equivalent ~shard_depth:1 ~jobs:2 ~backend:Pool.Forked w)
    Res_workloads.Workloads.all

let test_equivalence_kill_and_checkpoint () =
  (* Fork backend with a worker SIGKILLed mid-search at every depth, unit
     checkpoints enabled: the rescheduled units must reproduce the serial
     report bodies exactly. *)
  let dir = Filename.temp_file "res_par" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  List.iter
    (fun name ->
      let w = Res_workloads.Workloads.find name in
      let body, outcome = serial_body w in
      let body', outcome', stats =
        parallel_body ~jobs:2 ~backend:Pool.Forked ~ckpt_dir:dir ~kill_unit:0
          w
      in
      Alcotest.(check string)
        (name ^ " outcome survives worker kill")
        outcome outcome';
      Alcotest.(check string)
        (name ^ " bodies survive worker kill")
        body body';
      Alcotest.(check bool)
        (name ^ " a unit was rescheduled")
        true
        (stats.Engine.e_retries >= 1))
    [ "counter-race"; "long-exec-50" ];
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

(* --- batch: fork phase ---------------------------------------------- *)

let corpus_items () =
  List.map
    (fun (r : Res_workloads.Corpus.report) ->
      {
        Batch.it_name = Fmt.str "%s-%02d" r.Res_workloads.Corpus.r_bug r.r_id;
        it_prog = r.r_prog;
        it_dump = Ok r.r_dump;
      })
    (Res_workloads.Corpus.generate ~n_per_bug:2 ())

let shuffle seed l =
  let st = Random.State.make [| seed |] in
  l
  |> List.map (fun x -> (Random.State.bits st, x))
  |> List.sort compare |> List.map snd

let test_batch_deterministic_fork () =
  let items = corpus_items () in
  let serial = Batch.run ~jobs:1 ~backend:Pool.Forked items in
  Alcotest.(check bool) "rows produced" true (serial.Batch.rows <> []);
  let t = Batch.run ~jobs:4 ~backend:Pool.Forked (shuffle 23 items) in
  Alcotest.(check string) "tsv identical at -j 4 (fork), shuffled input"
    serial.Batch.tsv t.Batch.tsv

let test_batch_degrades () =
  let items = corpus_items () in
  let broken =
    {
      Batch.it_name = "00-broken";
      it_prog = (List.hd items).Batch.it_prog;
      it_dump = Error "truncated file";
    }
  in
  let t = Batch.run ~jobs:2 ~backend:Pool.Forked (broken :: items) in
  match t.Batch.rows with
  | first :: rest ->
      Alcotest.(check string) "broken dump sorts first" "00-broken"
        first.Batch.row_name;
      Alcotest.(check string) "broken dump fails gracefully" "failed"
        first.Batch.row_outcome;
      Alcotest.(check string) "bucketed as dump error" "dump-error"
        first.Batch.row_bucket;
      Alcotest.(check bool) "other rows unaffected" true
        (List.for_all (fun r -> r.Batch.row_outcome <> "failed") rest)
  | [] -> Alcotest.fail "no rows"

(** The degraded row must be identical at every worker count: a damaged
    dump costs one row, and which row it is cannot depend on [-j]. *)
let test_batch_degrades_every_jobs () =
  let items = corpus_items () in
  let broken =
    {
      Batch.it_name = "00-broken";
      it_prog = (List.hd items).Batch.it_prog;
      it_dump = Error "truncated file";
    }
  in
  let run jobs = Batch.run ~jobs ~backend:Pool.Forked (broken :: items) in
  let t1 = run 1 in
  let t4 = run 4 in
  List.iter
    (fun (jobs, t) ->
      match t.Batch.rows with
      | first :: rest ->
          Alcotest.(check string)
            (Fmt.str "-j %d: broken dump fails gracefully" jobs)
            "failed" first.Batch.row_outcome;
          Alcotest.(check string)
            (Fmt.str "-j %d: bucketed as dump error" jobs)
            "dump-error" first.Batch.row_bucket;
          Alcotest.(check bool)
            (Fmt.str "-j %d: other rows unaffected" jobs)
            true
            (List.for_all (fun r -> r.Batch.row_outcome <> "failed") rest)
      | [] -> Alcotest.fail "no rows")
    [ (1, t1); (4, t4) ];
  Alcotest.(check string) "degraded TSV identical at -j 1 and -j 4"
    t1.Batch.tsv t4.Batch.tsv

(** A worker SIGKILLed mid-unit with retries exhausted degrades that one
    unit to a worker-lost row; the pool still respawns a worker so the
    rest of the batch completes. *)
let test_batch_worker_lost_row () =
  let items = corpus_items () in
  let t =
    Batch.run ~jobs:2 ~backend:Pool.Forked ~kill_unit:1 ~attempts:1 items
  in
  let lost_rows =
    List.filter
      (fun r -> String.equal r.Batch.row_bucket "worker-lost")
      t.Batch.rows
  in
  Alcotest.(check int) "exactly one unit lost" 1 (List.length lost_rows);
  Alcotest.(check string) "lost unit marked failed" "failed"
    (List.hd lost_rows).Batch.row_outcome;
  Alcotest.(check int) "pool counted the loss" 1 t.Batch.lost;
  Alcotest.(check bool) "a replacement worker was respawned" true
    (t.Batch.respawns >= 1);
  Alcotest.(check int) "every item still produced a row"
    (List.length items)
    (List.length t.Batch.rows);
  Alcotest.(check bool) "one lost unit is not a failed batch" false
    (Batch.all_failed t)

(** A batch where every dump is unloadable still completes — and is
    recognizable as wholly failed, which the CLI maps to a nonzero
    exit. *)
let test_batch_all_failed () =
  let items = corpus_items () in
  let break i it =
    {
      it with
      Batch.it_name = Fmt.str "b%02d" i;
      it_dump = Error "unreadable";
    }
  in
  let t =
    Batch.run ~jobs:2 ~backend:Pool.Forked (List.mapi break items)
  in
  Alcotest.(check int) "every item produced a row" (List.length items)
    (List.length t.Batch.rows);
  Alcotest.(check bool) "wholly failed batch detected" true
    (Batch.all_failed t);
  let healthy = Batch.run ~jobs:2 ~backend:Pool.Forked items in
  Alcotest.(check bool) "healthy batch is not wholly failed" false
    (Batch.all_failed healthy)

(* --- supervision backoff (satellite; no pool) ------------------------ *)

let test_backoff_schedule () =
  let d = Pool.backoff_delay ~base:0.005 ~cap:0.25 in
  Alcotest.(check (float 1e-9)) "first retry at base" 0.005 (d 0);
  Alcotest.(check (float 1e-9)) "doubles" 0.01 (d 1);
  Alcotest.(check (float 1e-9)) "keeps doubling" 0.04 (d 3);
  Alcotest.(check (float 1e-9)) "caps" 0.25 (d 9);
  Alcotest.(check (float 1e-9)) "huge death counts stay capped (no overflow)"
    0.25 (d 1000);
  Alcotest.(check (float 1e-9)) "zero base disables backoff" 0.
    (Pool.backoff_delay ~base:0. ~cap:0.25 5)

(* --- journal naming (satellite 1; no pool) -------------------------- *)

let test_fresh_tmp_paths_disjoint () =
  let ps =
    List.init 50 (fun _ -> Res_vm.Coredump_io.fresh_tmp_path "/tmp/x/ckpt")
  in
  Alcotest.(check int) "50 distinct temp names" 50
    (List.length (List.sort_uniq compare ps));
  List.iter
    (fun p ->
      Alcotest.(check bool) "temp name keeps the .tmp suffix" true
        (Filename.check_suffix p ".tmp"))
    ps

let test_journal_siblings_found () =
  let dir = Filename.temp_file "res_sib" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "ckpt" in
  let legacy = path ^ ".tmp" in
  let modern = Fmt.str "%s.%d.7.tmp" path (Unix.getpid ()) in
  let decoy = Filename.concat dir "other.tmp" in
  List.iter
    (fun f ->
      let oc = open_out f in
      output_string oc "x";
      close_out oc)
    [ legacy; modern; decoy ];
  let sibs = Res_vm.Coredump_io.journal_siblings path in
  Alcotest.(check (list string)) "both journal generations, no decoys"
    (List.sort compare [ legacy; modern ])
    (List.sort compare sibs);
  List.iter Sys.remove [ legacy; modern; decoy ];
  Unix.rmdir dir

(* --- pool: domains phase -------------------------------------------- *)

let test_pool_order_domains () =
  let worker () = fun s -> "r:" ^ s in
  let units = List.init 13 (fun i -> Fmt.str "u%d" i) in
  let replies, stats = Pool.run ~backend:Pool.Domains ~jobs:4 ~worker units in
  Alcotest.(check (list (option string)))
    "replies in request order"
    (List.map (fun u -> Some ("r:" ^ u)) units)
    replies;
  Alcotest.(check int) "no lost units" 0 stats.Pool.p_lost

let test_pool_worker_exception_domains () =
  let worker () = fun s -> if s = "boom" then failwith "boom" else s in
  let replies, stats =
    Pool.run ~backend:Pool.Domains ~jobs:2 ~worker [ "a"; "boom"; "b" ]
  in
  Alcotest.(check (list (option string)))
    "exception -> None"
    [ Some "a"; None; Some "b" ] replies;
  Alcotest.(check int) "counted lost" 1 stats.Pool.p_lost

let test_pool_fork_after_domains_rejected () =
  let worker () = Fun.id in
  match Pool.run ~backend:Pool.Forked ~jobs:2 ~worker [ "a" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "fork after domains must be rejected, not hang"

(* --- equivalence: domains phase ------------------------------------- *)

let test_equivalence_domains () =
  List.iter
    (fun w ->
      check_equivalent ~jobs:1 ~backend:Pool.Domains w;
      check_equivalent ~jobs:4 ~backend:Pool.Domains w;
      check_equivalent ~shard_depth:1 ~jobs:4 ~backend:Pool.Domains w)
    Res_workloads.Workloads.all

(* --- batch: domains phase ------------------------------------------- *)

let test_batch_deterministic_domains () =
  let items = corpus_items () in
  let serial = Batch.run ~jobs:1 ~backend:Pool.Domains items in
  List.iter
    (fun (jobs, seed) ->
      let t = Batch.run ~jobs ~backend:Pool.Domains (shuffle seed items) in
      Alcotest.(check string)
        (Fmt.str "tsv identical at -j %d (domains), shuffled input" jobs)
        serial.Batch.tsv t.Batch.tsv)
    [ (2, 7); (3, 99) ]

let () =
  Alcotest.run "parallel"
    [
      ( "pool-fork",
        [
          Alcotest.test_case "replies in request order" `Quick
            test_pool_order_fork;
          Alcotest.test_case "worker exception = lost unit" `Quick
            test_pool_worker_exception_fork;
          Alcotest.test_case "SIGKILL mid-unit reschedules" `Quick
            test_pool_kill_reschedules;
        ] );
      ( "wire",
        [
          Alcotest.test_case "round-trips" `Quick test_wire_roundtrip;
          Alcotest.test_case "rejects corruption" `Quick
            test_wire_rejects_corrupt;
        ] );
      ( "equivalence-fork",
        [
          Alcotest.test_case "serial = parallel -j 2, all workloads" `Slow
            test_equivalence_fork;
          Alcotest.test_case "worker kill + unit checkpoints" `Slow
            test_equivalence_kill_and_checkpoint;
        ] );
      ( "batch-fork",
        [
          Alcotest.test_case "deterministic tsv under shuffle" `Slow
            test_batch_deterministic_fork;
          Alcotest.test_case "unloadable dump degrades" `Quick
            test_batch_degrades;
          Alcotest.test_case "degraded rows identical at -j 1/4" `Slow
            test_batch_degrades_every_jobs;
          Alcotest.test_case "worker lost past retry limit degrades" `Quick
            test_batch_worker_lost_row;
          Alcotest.test_case "wholly failed batch detected" `Quick
            test_batch_all_failed;
        ] );
      ( "journal",
        [
          Alcotest.test_case "backoff schedule doubles and caps" `Quick
            test_backoff_schedule;
          Alcotest.test_case "fresh tmp paths disjoint" `Quick
            test_fresh_tmp_paths_disjoint;
          Alcotest.test_case "siblings include legacy + pid forms" `Quick
            test_journal_siblings_found;
        ] );
      ( "pool-domains",
        [
          Alcotest.test_case "replies in request order" `Quick
            test_pool_order_domains;
          Alcotest.test_case "worker exception = lost unit" `Quick
            test_pool_worker_exception_domains;
          Alcotest.test_case "fork after domains rejected" `Quick
            test_pool_fork_after_domains_rejected;
        ] );
      ( "equivalence-domains",
        [
          Alcotest.test_case "serial = parallel -j 1/4, all workloads" `Slow
            test_equivalence_domains;
        ] );
      ( "batch-domains",
        [
          Alcotest.test_case "deterministic tsv under shuffle" `Slow
            test_batch_deterministic_domains;
        ] );
    ]
